// Dependency-free streaming JSON writer.
//
// Backs the machine-readable run reports and the Chrome trace exporter
// (core/report.h, core/trace.h): a push-style writer with a structural
// state machine, so emitted documents are well-formed by construction —
// misnested begin/end calls or a value without a key throw std::logic_error
// instead of producing broken output. Doubles are printed with the shortest
// decimal form that round-trips bit-exactly through strtod.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace sqz::util {

/// Escape one string for inclusion in a JSON document (no surrounding
/// quotes): ", \, and control characters; other bytes pass through (UTF-8).
std::string json_escape(const std::string& text);

/// Format a double as JSON: shortest decimal digits that parse back to the
/// identical double; non-finite values render as null (JSON has no NaN/Inf).
std::string json_number(double value);

/// Streaming writer. Typical use:
///
///   JsonWriter w(out);
///   w.begin_object();
///   w.member("name", "conv1");
///   w.key("counts"); w.begin_object(); ... w.end_object();
///   w.end_object();   // w.done() is now true
///
/// Output is pretty-printed with 2-space indentation (indent 0 = compact).
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os, int indent = 2)
      : os_(os), indent_(indent) {}

  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  /// Object member name; must be followed by exactly one value/container.
  void key(const std::string& name);

  void value(const std::string& v);
  void value(const char* v) { value(std::string(v)); }
  void value(std::int64_t v);
  void value(int v) { value(static_cast<std::int64_t>(v)); }
  void value(std::size_t v) { value(static_cast<std::int64_t>(v)); }
  void value(double v);
  void value(bool v);
  void null_value();

  /// key() + value() in one call.
  template <typename T>
  void member(const std::string& name, const T& v) {
    key(name);
    value(v);
  }

  /// True once the single top-level value has been completely written.
  bool done() const noexcept { return top_level_written_ && frames_.empty(); }

 private:
  enum class Frame { Object, Array };

  void before_value(bool is_key);
  void newline_indent();

  std::ostream& os_;
  int indent_;
  std::vector<Frame> frames_;
  std::vector<bool> frame_has_items_;
  bool key_pending_ = false;
  bool top_level_written_ = false;
};

}  // namespace sqz::util
