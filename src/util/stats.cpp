#include "util/stats.h"

#include <algorithm>
#include <cmath>

namespace sqz::util {

void Accumulator::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Accumulator::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_);
}

double Accumulator::stddev() const noexcept { return std::sqrt(variance()); }

double geomean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double log_sum = 0.0;
  for (double v : values) log_sum += std::log(v);
  return std::exp(log_sum / static_cast<double>(values.size()));
}

double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values.front();
  const double clamped = std::clamp(p, 0.0, 100.0);
  const double rank = clamped / 100.0 * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

}  // namespace sqz::util
