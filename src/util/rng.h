// Deterministic random number generation.
//
// Every stochastic quantity in the library (synthetic weights, the 40% weight
// sparsity model from the paper, random test shapes) is derived from an
// explicit 64-bit seed so that simulations, tests, and benchmark tables are
// bit-reproducible across runs and machines. The generator is SplitMix64 — a
// tiny, well-distributed, splittable PRNG that needs no <random> engine state.
#pragma once

#include <cstdint>

namespace sqz::util {

/// Splittable deterministic PRNG (SplitMix64).
class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept : state_(seed) {}

  /// Next raw 64-bit value.
  std::uint64_t next_u64() noexcept;

  /// Uniform in [0, bound). bound == 0 returns 0.
  std::uint64_t next_below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in [0, 1).
  double next_unit() noexcept;

  /// Bernoulli trial with probability p of returning true.
  bool next_bernoulli(double p) noexcept;

  /// Derive an independent child generator; used to give each layer / filter
  /// its own stream so adding a layer never perturbs another layer's weights.
  Rng split(std::uint64_t salt) noexcept;

 private:
  std::uint64_t state_;
};

/// Stable 64-bit hash of a string (FNV-1a); used to salt per-layer streams.
std::uint64_t hash64(const char* data, std::uint64_t len) noexcept;

}  // namespace sqz::util
