// Small descriptive-statistics helpers used by reports and ablation benches.
#pragma once

#include <cstddef>
#include <vector>

namespace sqz::util {

/// Online accumulator for min / max / mean / variance (Welford).
class Accumulator {
 public:
  void add(double x) noexcept;

  std::size_t count() const noexcept { return n_; }
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }
  double mean() const noexcept { return mean_; }
  /// Population variance; 0 when fewer than two samples.
  double variance() const noexcept;
  double stddev() const noexcept;
  double sum() const noexcept { return sum_; }

 private:
  std::size_t n_ = 0;
  double min_ = 0.0, max_ = 0.0, mean_ = 0.0, m2_ = 0.0, sum_ = 0.0;
};

/// Geometric mean of positive values; returns 0 for an empty input.
double geomean(const std::vector<double>& values);

/// p-th percentile (0..100) by linear interpolation on a copy of the data.
double percentile(std::vector<double> values, double p);

}  // namespace sqz::util
