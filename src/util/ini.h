// Minimal INI-style configuration parser.
//
// Grammar: optional [section] headers; key = value lines; '#' or ';'
// comments (full-line or trailing); blank lines ignored; whitespace trimmed.
// Used to describe accelerator configurations for the sqzsim CLI
// (tools/sqzsim.cpp) without recompiling.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace sqz::util {

class IniFile {
 public:
  /// Parse from text. Throws std::invalid_argument with a line number on
  /// malformed input (key without '=', unterminated section header, ...).
  static IniFile parse(const std::string& text);

  /// Value lookup; section "" is the implicit top-level section.
  std::optional<std::string> get(const std::string& section,
                                 const std::string& key) const;

  /// Typed lookups; throw std::invalid_argument when present but malformed.
  std::optional<std::int64_t> get_int(const std::string& section,
                                      const std::string& key) const;
  std::optional<double> get_double(const std::string& section,
                                   const std::string& key) const;
  std::optional<bool> get_bool(const std::string& section,
                               const std::string& key) const;

  bool has_section(const std::string& section) const;
  std::size_t size() const noexcept { return values_.size(); }

  /// All keys of one section, sorted (section "" = top level).
  std::vector<std::string> keys(const std::string& section) const;

  void set(const std::string& section, const std::string& key,
           const std::string& value);

  /// Serialize back to INI text (sections sorted, keys sorted).
  std::string to_string() const;

 private:
  // Keyed by "section\nkey" to keep one flat map.
  std::map<std::string, std::string> values_;
};

}  // namespace sqz::util
