#include "util/faultinject.h"

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "util/logging.h"

namespace sqz::util::fault {

namespace detail {
std::atomic<int> g_armed_sites{0};
}

namespace {

struct Site {
  Action action;
  int remaining = 0;
  std::uint64_t hits = 0;
};

// Registry state. A plain mutex is fine: the fast path never takes it
// (enabled() short-circuits), and armed runs are tests or chaos drills.
std::mutex& registry_mutex() {
  static std::mutex mu;
  return mu;
}

std::map<std::string, Site>& registry() {
  static std::map<std::string, Site> sites;
  return sites;
}

void recount_locked() {
  int armed = 0;
  for (const auto& [name, site] : registry())
    if (site.remaining > 0) ++armed;
  detail::g_armed_sites.store(armed, std::memory_order_relaxed);
}

bool parse_errno_name(const std::string& text, int& err) {
  if (text == "ENOSPC") err = ENOSPC;
  else if (text == "EMFILE") err = EMFILE;
  else if (text == "ENFILE") err = ENFILE;
  else if (text == "EIO") err = EIO;
  else if (text == "ECONNRESET") err = ECONNRESET;
  else {
    char* end = nullptr;
    const long v = std::strtol(text.c_str(), &end, 10);
    if (end == text.c_str() || *end != '\0' || v <= 0) return false;
    err = static_cast<int>(v);
  }
  return true;
}

// One "site=kind[:arg][*times]" clause.
bool parse_clause(const std::string& clause, std::string& site, Action& action,
                  int& times, std::string* error) {
  const auto fail = [&](const std::string& why) {
    if (error) *error = "SQZ_FAULT: " + why + " in '" + clause + "'";
    return false;
  };
  const std::size_t eq = clause.find('=');
  if (eq == std::string::npos || eq == 0) return fail("missing 'site='");
  site = clause.substr(0, eq);
  std::string rest = clause.substr(eq + 1);

  times = 1;
  const std::size_t star = rest.find('*');
  if (star != std::string::npos) {
    char* end = nullptr;
    const long v = std::strtol(rest.c_str() + star + 1, &end, 10);
    if (*end != '\0' || v <= 0) return fail("bad shot count");
    times = static_cast<int>(v);
    rest = rest.substr(0, star);
  }

  const std::size_t colon = rest.find(':');
  const std::string kind = rest.substr(0, colon);
  const std::string arg =
      colon == std::string::npos ? "" : rest.substr(colon + 1);
  if (kind == "errno") {
    int err = 0;
    if (!parse_errno_name(arg, err)) return fail("bad errno '" + arg + "'");
    action = make_errno(err);
  } else if (kind == "short") {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(arg.c_str(), &end, 10);
    if (arg.empty() || *end != '\0') return fail("bad byte count");
    action = make_short(static_cast<std::size_t>(v));
  } else if (kind == "stall") {
    char* end = nullptr;
    const long v = std::strtol(arg.c_str(), &end, 10);
    if (arg.empty() || *end != '\0' || v < 0) return fail("bad stall millis");
    action = make_stall(static_cast<int>(v));
  } else {
    return fail("unknown kind '" + kind + "' (errno|short|stall)");
  }
  return true;
}

// Apply SQZ_FAULT once, before main() touches any fault point.
struct EnvInit {
  EnvInit() {
    const char* spec = std::getenv("SQZ_FAULT");
    if (!spec || !*spec) return;
    std::string error;
    if (!arm_from_spec(spec, &error))
      SQZ_LOG(Warn) << "ignoring malformed fault spec: " << error;
  }
};
const EnvInit g_env_init;

}  // namespace

Action consume(const char* site) noexcept {
  Action armed;
  {
    std::lock_guard<std::mutex> lock(registry_mutex());
    const auto it = registry().find(site);
    if (it == registry().end() || it->second.remaining <= 0) return Action{};
    --it->second.remaining;
    ++it->second.hits;
    armed = it->second.action;
    recount_locked();
  }
  if (armed.kind == Kind::Stall && armed.millis > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(armed.millis));
  }
  return armed;
}

void arm(const std::string& site, Action action, int times) {
  std::lock_guard<std::mutex> lock(registry_mutex());
  registry()[site] = Site{action, times < 0 ? 0 : times, 0};
  recount_locked();
}

void disarm(const std::string& site) {
  std::lock_guard<std::mutex> lock(registry_mutex());
  const auto it = registry().find(site);
  if (it != registry().end()) it->second.remaining = 0;
  recount_locked();
}

void reset() {
  std::lock_guard<std::mutex> lock(registry_mutex());
  registry().clear();
  recount_locked();
}

std::uint64_t hits(const std::string& site) {
  std::lock_guard<std::mutex> lock(registry_mutex());
  const auto it = registry().find(site);
  return it == registry().end() ? 0 : it->second.hits;
}

int remaining(const std::string& site) {
  std::lock_guard<std::mutex> lock(registry_mutex());
  const auto it = registry().find(site);
  return it == registry().end() ? 0 : it->second.remaining;
}

bool arm_from_spec(const std::string& spec, std::string* error) {
  // Validate every clause before arming any, so a bad spec is a no-op.
  struct Parsed {
    std::string site;
    Action action;
    int times;
  };
  std::vector<Parsed> clauses;
  std::size_t begin = 0;
  while (begin <= spec.size()) {
    std::size_t end = spec.find(';', begin);
    if (end == std::string::npos) end = spec.size();
    const std::string clause = spec.substr(begin, end - begin);
    if (!clause.empty()) {
      Parsed p;
      if (!parse_clause(clause, p.site, p.action, p.times, error)) return false;
      clauses.push_back(std::move(p));
    }
    begin = end + 1;
  }
  for (const Parsed& p : clauses) arm(p.site, p.action, p.times);
  return true;
}

}  // namespace sqz::util::fault
