#include "util/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace sqz::util {

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (unsigned char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

std::string json_number(double value) {
  if (!std::isfinite(value)) return "null";
  // Shortest round-trip: try increasing precision until strtod gives the
  // identical bits back; %.17g always does, most values need far fewer.
  char buf[40];
  for (int precision = 1; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof buf, "%.*g", precision, value);
    if (std::strtod(buf, nullptr) == value) break;
  }
  std::string s = buf;
  // "1e+06" style is valid JSON; "inf"/"nan" cannot reach here. A bare
  // integer like "5" is fine too — JSON does not distinguish.
  return s;
}

void JsonWriter::newline_indent() {
  if (indent_ <= 0) return;
  os_ << '\n';
  for (std::size_t i = 0; i < frames_.size() * static_cast<std::size_t>(indent_);
       ++i)
    os_ << ' ';
}

void JsonWriter::before_value(bool is_key) {
  if (top_level_written_ && frames_.empty())
    throw std::logic_error("JsonWriter: document already complete");
  if (!frames_.empty() && frames_.back() == Frame::Object && !is_key &&
      !key_pending_)
    throw std::logic_error("JsonWriter: object member needs a key() first");
  if (key_pending_ && is_key)
    throw std::logic_error("JsonWriter: key() already pending");
  if (frames_.empty() || key_pending_) {
    // Top-level value, or the value following a key: no separator.
    if (!is_key) key_pending_ = false;
    return;
  }
  if (frames_.back() == Frame::Array || is_key) {
    if (frame_has_items_.back()) os_ << ',';
    newline_indent();
    frame_has_items_.back() = true;
  }
}

void JsonWriter::begin_object() {
  before_value(false);
  os_ << '{';
  frames_.push_back(Frame::Object);
  frame_has_items_.push_back(false);
}

void JsonWriter::end_object() {
  if (frames_.empty() || frames_.back() != Frame::Object || key_pending_)
    throw std::logic_error("JsonWriter: end_object() without matching object");
  const bool had_items = frame_has_items_.back();
  frames_.pop_back();
  frame_has_items_.pop_back();
  if (had_items) newline_indent();
  os_ << '}';
  if (frames_.empty()) top_level_written_ = true;
}

void JsonWriter::begin_array() {
  before_value(false);
  os_ << '[';
  frames_.push_back(Frame::Array);
  frame_has_items_.push_back(false);
}

void JsonWriter::end_array() {
  if (frames_.empty() || frames_.back() != Frame::Array)
    throw std::logic_error("JsonWriter: end_array() without matching array");
  const bool had_items = frame_has_items_.back();
  frames_.pop_back();
  frame_has_items_.pop_back();
  if (had_items) newline_indent();
  os_ << ']';
  if (frames_.empty()) top_level_written_ = true;
}

void JsonWriter::key(const std::string& name) {
  if (frames_.empty() || frames_.back() != Frame::Object)
    throw std::logic_error("JsonWriter: key() outside an object");
  before_value(true);
  os_ << '"' << json_escape(name) << "\":";
  if (indent_ > 0) os_ << ' ';
  key_pending_ = true;
}

void JsonWriter::value(const std::string& v) {
  before_value(false);
  os_ << '"' << json_escape(v) << '"';
  if (frames_.empty()) top_level_written_ = true;
}

void JsonWriter::value(std::int64_t v) {
  before_value(false);
  os_ << v;
  if (frames_.empty()) top_level_written_ = true;
}

void JsonWriter::value(double v) {
  before_value(false);
  os_ << json_number(v);
  if (frames_.empty()) top_level_written_ = true;
}

void JsonWriter::value(bool v) {
  before_value(false);
  os_ << (v ? "true" : "false");
  if (frames_.empty()) top_level_written_ = true;
}

void JsonWriter::null_value() {
  before_value(false);
  os_ << "null";
  if (frames_.empty()) top_level_written_ = true;
}

}  // namespace sqz::util
