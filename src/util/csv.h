// CSV writer with RFC-4180 quoting. Benches optionally dump their series as
// CSV (for replotting the paper's figures) next to the ASCII tables.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace sqz::util {

/// Escape one field per RFC 4180 (quote when it contains comma/quote/newline).
std::string csv_escape(const std::string& field);

/// Streams rows to an ostream. The writer owns no file; callers pass any sink.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& os) : os_(os) {}

  void write_row(const std::vector<std::string>& fields);

  /// Convenience: write a row of doubles with fixed precision.
  void write_numeric_row(const std::string& label, const std::vector<double>& values,
                         int precision = 6);

  std::size_t rows_written() const noexcept { return rows_; }

 private:
  std::ostream& os_;
  std::size_t rows_ = 0;
};

}  // namespace sqz::util
