#include "util/strings.h"

#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <sstream>

namespace sqz::util {

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string with_commas(std::int64_t value) {
  const bool negative = value < 0;
  std::string digits = std::to_string(negative ? -value : value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3 + 1);
  const std::size_t n = digits.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (i > 0 && (n - i) % 3 == 0) out.push_back(',');
    out.push_back(digits[i]);
  }
  return negative ? "-" + out : out;
}

std::string si(double value, int precision) {
  static constexpr const char* kSuffix[] = {"", "K", "M", "G", "T"};
  double v = std::fabs(value);
  int idx = 0;
  while (v >= 1000.0 && idx < 4) {
    v /= 1000.0;
    ++idx;
  }
  if (value < 0) v = -v;
  return format("%.*f%s", precision, v, kSuffix[idx]);
}

std::string percent(double fraction, int precision) {
  return format("%.*f%%", precision, fraction * 100.0);
}

std::string times(double ratio, int precision) {
  return format("%.*fx", precision, ratio);
}

std::string trim_copy(const std::string& text) {
  const auto begin = text.find_first_not_of(" \t\r\n");
  if (begin == std::string::npos) return "";
  const auto end = text.find_last_not_of(" \t\r\n");
  return text.substr(begin, end - begin + 1);
}

std::vector<std::string> split(const std::string& text, char delim) {
  std::vector<std::string> out;
  std::string token;
  std::istringstream in(text);
  while (std::getline(in, token, delim)) out.push_back(token);
  if (!text.empty() && text.back() == delim) out.emplace_back();
  return out;
}

std::string pad_left(const std::string& text, std::size_t width) {
  if (text.size() >= width) return text.substr(0, width);
  return std::string(width - text.size(), ' ') + text;
}

std::string pad_right(const std::string& text, std::size_t width) {
  if (text.size() >= width) return text.substr(0, width);
  return text + std::string(width - text.size(), ' ');
}

}  // namespace sqz::util
