#include "util/rng.h"

namespace sqz::util {

std::uint64_t Rng::next_u64() noexcept {
  std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t Rng::next_below(std::uint64_t bound) noexcept {
  if (bound == 0) return 0;
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~0ULL - (~0ULL % bound);
  std::uint64_t v = next_u64();
  while (v >= limit) v = next_u64();
  return v % bound;
}

std::int64_t Rng::next_in(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::next_unit() noexcept {
  // 53 mantissa bits -> uniform in [0,1).
  return static_cast<double>(next_u64() >> 11) * (1.0 / 9007199254740992.0);
}

bool Rng::next_bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_unit() < p;
}

Rng Rng::split(std::uint64_t salt) noexcept {
  Rng child(state_ ^ (salt * 0xD1B54A32D192ED03ULL + 0x8CB92BA72F3D8DD7ULL));
  // Burn one value so adjacent salts diverge immediately.
  child.next_u64();
  return child;
}

std::uint64_t hash64(const char* data, std::uint64_t len) noexcept {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (std::uint64_t i = 0; i < len; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 0x100000001B3ULL;
  }
  return h;
}

}  // namespace sqz::util
