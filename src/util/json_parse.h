// Strict, dependency-free JSON parser (RFC 8259).
//
// The read-side counterpart of util/json.h, promoted out of the test tree
// (tests/support/mini_json.h) so the serving layer (src/serve) can parse
// request bodies with the same strict grammar the tests validate against.
// Reader and writer deliberately share no code: the JSON round-trip tests
// would be meaningless if parse errors and formatting bugs could cancel out.
//
// Strictness: exactly one top-level value, RFC 8259 number grammar, no
// trailing input, duplicate object keys rejected. Any violation throws
// std::runtime_error with a byte offset.
//
// The parser is fed untrusted bytes by the serving layer, so adversarial
// shapes are bounded too (JsonLimits): input size is capped before the
// first byte is examined, container nesting is capped (a few hundred bytes
// of "[[[[..." would otherwise recurse the stack into the ground), and
// numbers whose magnitude overflows double are rejected rather than
// silently becoming infinity.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace sqz::util {

struct JsonValue {
  enum class Type { Null, Bool, Number, String, Array, Object };
  Type type = Type::Null;

  bool boolean = false;
  double number = 0.0;
  std::string raw_number;  ///< Original token, for exact integer checks.
  std::string text;        ///< String value (decoded).
  std::vector<JsonValue> items;                            ///< Array.
  std::vector<std::pair<std::string, JsonValue>> members;  ///< Object, ordered.

  bool is_object() const { return type == Type::Object; }
  bool is_array() const { return type == Type::Array; }
  bool is_string() const { return type == Type::String; }
  bool is_number() const { return type == Type::Number; }

  bool has(const std::string& key) const {
    for (const auto& [k, v] : members)
      if (k == key) return true;
    return false;
  }

  /// Object member lookup; throws std::runtime_error when absent.
  const JsonValue& at(const std::string& key) const;

  /// Array element lookup; throws std::runtime_error when out of range.
  const JsonValue& at(std::size_t i) const;

  double as_double() const;
  std::int64_t as_int() const;
  const std::string& as_string() const;
  bool as_bool() const;
};

/// Guards against adversarial inputs; defaults accept anything the server
/// itself would accept (its body cap is 64 MiB) with room to spare.
struct JsonLimits {
  std::size_t max_bytes = 64 * 1024 * 1024;  ///< Whole-document size cap.
  std::size_t max_depth = 128;  ///< Array/object nesting cap.
};

/// Parse one complete JSON document. Throws std::runtime_error on any
/// grammar violation, naming the byte offset, and on any JsonLimits
/// violation, naming the exceeded limit.
JsonValue parse_json(const std::string& text, const JsonLimits& limits = {});

}  // namespace sqz::util
