// String formatting helpers shared by the table/CSV writers and reports.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace sqz::util {

/// printf-style formatting into a std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// "1234567" -> "1,234,567" (thousands separators, for table readability).
std::string with_commas(std::int64_t value);

/// Human-readable quantity with SI suffix: 1234567 -> "1.23M".
std::string si(double value, int precision = 2);

/// Fixed-point percentage: 0.2345 -> "23.4%".
std::string percent(double fraction, int precision = 1);

/// "x.xx×" speedup formatting.
std::string times(double ratio, int precision = 2);

/// Trim ASCII whitespace from both ends (returns a copy).
std::string trim_copy(const std::string& text);

/// Split on a delimiter; no empty-token suppression.
std::vector<std::string> split(const std::string& text, char delim);

/// Left/right padding to a fixed width (truncates if longer).
std::string pad_left(const std::string& text, std::size_t width);
std::string pad_right(const std::string& text, std::size_t width);

}  // namespace sqz::util
