#include "util/json_parse.h"

#include <cerrno>
#include <cmath>
#include <cstdlib>

namespace sqz::util {

const JsonValue& JsonValue::at(const std::string& key) const {
  for (const auto& [k, v] : members)
    if (k == key) return v;
  throw std::runtime_error("json: missing key '" + key + "'");
}

const JsonValue& JsonValue::at(std::size_t i) const {
  if (i >= items.size()) throw std::runtime_error("json: index out of range");
  return items[i];
}

double JsonValue::as_double() const {
  if (type != Type::Number) throw std::runtime_error("json: not a number");
  return number;
}

std::int64_t JsonValue::as_int() const {
  const double d = as_double();
  const auto i = static_cast<std::int64_t>(d);
  if (static_cast<double>(i) != d)
    throw std::runtime_error("json: number is not integral: " + raw_number);
  return i;
}

const std::string& JsonValue::as_string() const {
  if (type != Type::String) throw std::runtime_error("json: not a string");
  return text;
}

bool JsonValue::as_bool() const {
  if (type != Type::Bool) throw std::runtime_error("json: not a bool");
  return boolean;
}

namespace {

class Parser {
 public:
  Parser(const std::string& text, const JsonLimits& limits)
      : text_(text), limits_(limits) {}

  JsonValue parse() {
    if (text_.size() > limits_.max_bytes)
      throw std::runtime_error(
          "json: input of " + std::to_string(text_.size()) +
          " bytes exceeds the " + std::to_string(limits_.max_bytes) +
          "-byte limit");
    skip_ws();
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing input after top-level value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error("json: " + why + " at byte " +
                             std::to_string(pos_));
  }

  char peek() const {
    if (pos_ >= text_.size()) throw std::runtime_error("json: unexpected end");
    return text_[pos_];
  }

  char next() {
    const char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    if (next() != c) fail(std::string("expected '") + c + "'");
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') ++pos_;
      else break;
    }
  }

  bool consume_literal(const char* lit) {
    const std::size_t n = std::char_traits<char>::length(lit);
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  JsonValue parse_value() {
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') {
      JsonValue v;
      v.type = JsonValue::Type::String;
      v.text = parse_string();
      return v;
    }
    if (c == 't' || c == 'f') {
      JsonValue v;
      v.type = JsonValue::Type::Bool;
      if (consume_literal("true")) v.boolean = true;
      else if (consume_literal("false")) v.boolean = false;
      else fail("bad literal");
      return v;
    }
    if (c == 'n') {
      if (!consume_literal("null")) fail("bad literal");
      return JsonValue{};
    }
    return parse_number();
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      const char c = next();
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control char in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      const char esc = next();
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = next();
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          if (code >= 0xD800 && code <= 0xDFFF) fail("surrogates unsupported");
          // Minimal UTF-8 encoding (the writer only emits \u00xx).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("bad escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (peek() == '0') {
      ++pos_;
    } else if (peek() >= '1' && peek() <= '9') {
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    } else {
      fail("bad number");
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9')
        fail("bad fraction");
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9')
        fail("bad exponent");
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    }
    JsonValue v;
    v.type = JsonValue::Type::Number;
    v.raw_number = text_.substr(start, pos_ - start);
    errno = 0;
    v.number = std::strtod(v.raw_number.c_str(), nullptr);
    // Overflow to +/-inf is a lie we refuse to tell the caller. Underflow
    // to zero (1e-9999) is representable-enough and allowed by RFC 8259.
    if (errno == ERANGE && std::isinf(v.number))
      fail("number out of range: " + v.raw_number);
    return v;
  }

  // Containers share one depth budget; a guard object keeps it exact across
  // the recursive descent.
  struct DepthGuard {
    explicit DepthGuard(Parser& p) : parser(p) {
      if (++parser.depth_ > parser.limits_.max_depth)
        parser.fail("nesting deeper than " +
                    std::to_string(parser.limits_.max_depth) + " levels");
    }
    ~DepthGuard() { --parser.depth_; }
    Parser& parser;
  };

  JsonValue parse_array() {
    DepthGuard depth(*this);
    expect('[');
    JsonValue v;
    v.type = JsonValue::Type::Array;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      v.items.push_back(parse_value());
      skip_ws();
      const char c = next();
      if (c == ']') return v;
      if (c != ',') fail("expected ',' or ']'");
    }
  }

  JsonValue parse_object() {
    DepthGuard depth(*this);
    expect('{');
    JsonValue v;
    v.type = JsonValue::Type::Object;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      if (v.has(key)) fail("duplicate key '" + key + "'");
      skip_ws();
      expect(':');
      skip_ws();
      v.members.emplace_back(std::move(key), parse_value());
      skip_ws();
      const char c = next();
      if (c == '}') return v;
      if (c != ',') fail("expected ',' or '}'");
    }
  }

  const std::string& text_;
  const JsonLimits limits_;
  std::size_t pos_ = 0;
  std::size_t depth_ = 0;
};

}  // namespace

JsonValue parse_json(const std::string& text, const JsonLimits& limits) {
  return Parser(text, limits).parse();
}

}  // namespace sqz::util
