// Minimal leveled logger for the squeezelerator library.
//
// Usage:
//   SQZ_LOG(Info) << "simulated " << n << " layers";
//
// The logger is intentionally tiny: a global level, stderr sink, and a
// stream-style macro. Benchmarks and tests lower the level to keep output
// clean; examples raise it to narrate what the library is doing.
#pragma once

#include <sstream>
#include <string>

namespace sqz::util {

enum class LogLevel { Trace = 0, Debug = 1, Info = 2, Warn = 3, Error = 4, Off = 5 };

/// Global minimum level; messages below it are discarded.
LogLevel log_level() noexcept;
void set_log_level(LogLevel level) noexcept;

/// Returns a short uppercase tag ("INFO", "WARN", ...) for a level.
const char* log_level_name(LogLevel level) noexcept;

namespace detail {

// One log statement. Accumulates the message in a stringstream and emits it
// (with level tag) on destruction, so a statement is atomic per line.
class LogStatement {
 public:
  explicit LogStatement(LogLevel level) : level_(level) {}
  ~LogStatement();

  LogStatement(const LogStatement&) = delete;
  LogStatement& operator=(const LogStatement&) = delete;

  template <typename T>
  LogStatement& operator<<(const T& value) {
    if (enabled()) stream_ << value;
    return *this;
  }

  bool enabled() const noexcept { return level_ >= log_level(); }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail

}  // namespace sqz::util

#define SQZ_LOG(level) \
  ::sqz::util::detail::LogStatement(::sqz::util::LogLevel::level)
