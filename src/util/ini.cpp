#include "util/ini.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "util/strings.h"

namespace sqz::util {

namespace {

std::string slot(const std::string& section, const std::string& key) {
  return section + "\n" + key;
}

std::string strip_comment(const std::string& line) {
  const auto pos = line.find_first_of("#;");
  return pos == std::string::npos ? line : line.substr(0, pos);
}

}  // namespace

IniFile IniFile::parse(const std::string& text) {
  IniFile ini;
  std::istringstream in(text);
  std::string raw;
  std::string section;
  int line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    const std::string line = trim_copy(strip_comment(raw));
    if (line.empty()) continue;
    if (line.front() == '[') {
      if (line.back() != ']' || line.size() < 3)
        throw std::invalid_argument(
            format("ini: malformed section header at line %d: '%s'", line_no,
                   raw.c_str()));
      section = trim_copy(line.substr(1, line.size() - 2));
      continue;
    }
    const auto eq = line.find('=');
    if (eq == std::string::npos)
      throw std::invalid_argument(
          format("ini: expected 'key = value' at line %d: '%s'", line_no,
                 raw.c_str()));
    const std::string key = trim_copy(line.substr(0, eq));
    const std::string value = trim_copy(line.substr(eq + 1));
    if (key.empty())
      throw std::invalid_argument(format("ini: empty key at line %d", line_no));
    ini.values_[slot(section, key)] = value;
  }
  return ini;
}

std::optional<std::string> IniFile::get(const std::string& section,
                                        const std::string& key) const {
  const auto it = values_.find(slot(section, key));
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::optional<std::int64_t> IniFile::get_int(const std::string& section,
                                             const std::string& key) const {
  const auto v = get(section, key);
  if (!v) return std::nullopt;
  try {
    std::size_t used = 0;
    const std::int64_t out = std::stoll(*v, &used);
    if (used != v->size()) throw std::invalid_argument("trailing chars");
    return out;
  } catch (const std::exception&) {
    throw std::invalid_argument(
        format("ini: '%s.%s' is not an integer: '%s'", section.c_str(),
               key.c_str(), v->c_str()));
  }
}

std::optional<double> IniFile::get_double(const std::string& section,
                                          const std::string& key) const {
  const auto v = get(section, key);
  if (!v) return std::nullopt;
  try {
    std::size_t used = 0;
    const double out = std::stod(*v, &used);
    if (used != v->size()) throw std::invalid_argument("trailing chars");
    return out;
  } catch (const std::exception&) {
    throw std::invalid_argument(
        format("ini: '%s.%s' is not a number: '%s'", section.c_str(),
               key.c_str(), v->c_str()));
  }
}

std::optional<bool> IniFile::get_bool(const std::string& section,
                                      const std::string& key) const {
  const auto v = get(section, key);
  if (!v) return std::nullopt;
  std::string lower = *v;
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (lower == "true" || lower == "1" || lower == "yes" || lower == "on")
    return true;
  if (lower == "false" || lower == "0" || lower == "no" || lower == "off")
    return false;
  throw std::invalid_argument(format("ini: '%s.%s' is not a boolean: '%s'",
                                     section.c_str(), key.c_str(), v->c_str()));
}

bool IniFile::has_section(const std::string& section) const {
  const std::string prefix = section + "\n";
  const auto it = values_.lower_bound(prefix);
  return it != values_.end() && it->first.compare(0, prefix.size(), prefix) == 0;
}

std::vector<std::string> IniFile::keys(const std::string& section) const {
  const std::string prefix = section + "\n";
  std::vector<std::string> out;
  for (auto it = values_.lower_bound(prefix);
       it != values_.end() && it->first.compare(0, prefix.size(), prefix) == 0;
       ++it)
    out.push_back(it->first.substr(prefix.size()));
  return out;
}

void IniFile::set(const std::string& section, const std::string& key,
                  const std::string& value) {
  values_[slot(section, key)] = value;
}

std::string IniFile::to_string() const {
  std::ostringstream out;
  std::string current_section = "";  // sentinel: never a real section
  for (const auto& [k, v] : values_) {
    const auto nl = k.find('\n');
    const std::string section = k.substr(0, nl);
    const std::string key = k.substr(nl + 1);
    if (section != current_section) {
      if (!section.empty()) out << "[" << section << "]\n";
      current_section = section;
    }
    out << key << " = " << v << "\n";
  }
  return out.str();
}

}  // namespace sqz::util
