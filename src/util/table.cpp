#include "util/table.h"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "util/strings.h"

namespace sqz::util {

void Table::set_header(std::vector<std::string> header) { header_ = std::move(header); }

void Table::set_alignments(std::vector<Align> alignments) {
  alignments_ = std::move(alignments);
}

void Table::add_row(std::vector<std::string> row) {
  rows_.push_back(Row{std::move(row), pending_separator_});
  pending_separator_ = false;
}

void Table::add_separator() { pending_separator_ = true; }

Align Table::alignment_for(std::size_t col) const {
  if (col < alignments_.size()) return alignments_[col];
  return col == 0 ? Align::Left : Align::Right;
}

std::string Table::to_string() const {
  std::size_t cols = header_.size();
  for (const Row& r : rows_) cols = std::max(cols, r.cells.size());

  std::vector<std::size_t> widths(cols, 0);
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const Row& r : rows_)
    for (std::size_t c = 0; c < r.cells.size(); ++c)
      widths[c] = std::max(widths[c], r.cells[c].size());

  const auto rule = [&] {
    std::string line = "+";
    for (std::size_t c = 0; c < cols; ++c) line += std::string(widths[c] + 2, '-') + "+";
    return line + "\n";
  };
  const auto emit_row = [&](const std::vector<std::string>& cells) {
    std::string line = "|";
    for (std::size_t c = 0; c < cols; ++c) {
      const std::string cell = c < cells.size() ? cells[c] : "";
      const std::string padded = alignment_for(c) == Align::Left
                                     ? pad_right(cell, widths[c])
                                     : pad_left(cell, widths[c]);
      line += " " + padded + " |";
    }
    return line + "\n";
  };

  std::ostringstream out;
  if (!title_.empty()) out << title_ << "\n";
  out << rule();
  if (!header_.empty()) {
    out << emit_row(header_);
    out << rule();
  }
  for (const Row& r : rows_) {
    if (r.separator_before) out << rule();
    out << emit_row(r.cells);
  }
  out << rule();
  return out.str();
}

void Table::print(std::ostream& os) const { os << to_string(); }

}  // namespace sqz::util
