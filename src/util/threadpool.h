// Fixed-size task pool for embarrassingly-parallel sweep evaluation.
//
// The design-space layers (core/dse, core/codesign, core/multicore, the
// bench sweep drivers) evaluate many independent design points; this pool
// lets them fan those evaluations out across threads while keeping results
// bit-exact: callers write each result into a pre-sized slot indexed by
// input position, so output ordering never depends on thread scheduling.
//
// Deliberately minimal — no work stealing, no futures. One blocking
// primitive, `parallel_for_index(n, fn)`, runs fn(0..n-1) with the caller
// thread participating, propagates the first worker exception to the
// caller, executes inline when the pool has one job (or on nested calls,
// which also makes nesting deadlock-free).
//
// Job-count policy, strongest first: ThreadPool::set_global_jobs (the
// `--jobs` CLI flag), the SQZ_JOBS environment variable, then
// std::thread::hardware_concurrency().
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace sqz::util {

class ThreadPool {
 public:
  /// Spawns `jobs - 1` worker threads (the caller is the remaining job).
  /// jobs < 1 is clamped to 1; jobs == 1 means every call runs inline.
  explicit ThreadPool(int jobs);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int jobs() const noexcept { return jobs_; }

  /// Run fn(i) for every i in [0, n), blocking until all complete. The
  /// caller thread participates, so jobs=1 (and n<=1) degenerates to a plain
  /// loop on the caller. Iterations must be independent; for deterministic
  /// output, fn must write only to state owned by its own index. If any
  /// iteration throws, the first exception (in completion order) is
  /// rethrown on the caller after the batch drains; remaining indices are
  /// abandoned. Nested calls from inside a worker run inline.
  void parallel_for_index(std::size_t n,
                          const std::function<void(std::size_t)>& fn);

  /// Fault-isolating variant: a throwing iteration never aborts the batch.
  /// Every index in [0, n) runs to completion; an exception thrown by fn(i)
  /// is captured into errors[i] (errors is resized to n, entries for clean
  /// indices are null). Returns the number of indices that threw. This is
  /// the sweep-engine primitive: one poisoned design point must not tear
  /// down the other n-1 evaluations (core/dse.h).
  std::size_t parallel_for_index_capture(
      std::size_t n, const std::function<void(std::size_t)>& fn,
      std::vector<std::exception_ptr>& errors);

  /// Enqueue one fire-and-forget task onto the pool's workers — the request
  /// dispatch primitive of the serving layer (serve/server.h). With a
  /// one-job pool there are no workers, so the task runs inline on the
  /// caller before submit() returns. Tasks must not block waiting on other
  /// submitted tasks (they may share the lone worker); nested
  /// parallel_for_index from inside a task is fine (it runs inline).
  void submit(std::function<void()> task);

  /// Process-wide pool used by the sweep layers. Created on first use with
  /// set_global_jobs()'s value if one was set, else default_jobs().
  static ThreadPool& global();

  /// Resize the global pool (the `--jobs` override). jobs <= 0 restores the
  /// default policy (SQZ_JOBS, then hardware concurrency). Not safe to call
  /// concurrently with a running parallel_for_index on the global pool.
  static void set_global_jobs(int jobs);

  /// Job count the global pool has (or would be created with).
  static int global_jobs();

  /// SQZ_JOBS environment override if set, else
  /// std::thread::hardware_concurrency() (at least 1). A set-but-invalid
  /// SQZ_JOBS (zero, negative, or non-numeric) throws std::invalid_argument
  /// instead of silently falling back, so a typo'd environment never runs
  /// at an unintended width.
  static int default_jobs();

  /// Strict job-count parser shared by `--jobs` and SQZ_JOBS: the entire
  /// string must be a positive decimal integer. Throws std::invalid_argument
  /// (mentioning `what`) on empty input, garbage, trailing characters, zero,
  /// negatives, or overflow.
  static int parse_jobs(const std::string& text, const std::string& what);

 private:
  struct Batch;

  void worker_main();
  void run_batch(const std::shared_ptr<Batch>& batch);

  const int jobs_;
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
};

}  // namespace sqz::util
