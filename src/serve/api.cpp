#include "serve/api.h"

#include <functional>
#include <sstream>

#include "core/cli.h"
#include "core/config_io.h"
#include "core/dse.h"
#include "serve/coordinator.h"
#include "core/report.h"
#include "nn/serialize.h"
#include "util/ini.h"
#include "util/json.h"
#include "util/json_parse.h"

namespace sqz::serve {

namespace {

using util::JsonValue;

[[noreturn]] void bad_request(const std::string& why) {
  throw ApiError(400, why);
}

const JsonValue* member(const JsonValue& obj, const std::string& key) {
  for (const auto& [k, v] : obj.members)
    if (k == key) return &v;
  return nullptr;
}

JsonValue parse_body(const std::string& body) {
  JsonValue doc;
  try {
    doc = util::parse_json(body);
  } catch (const std::exception& e) {
    bad_request(std::string("request body is not valid JSON: ") + e.what());
  }
  if (!doc.is_object()) bad_request("request body must be a JSON object");
  return doc;
}

void reject_unknown_members(const JsonValue& obj,
                            std::initializer_list<const char*> known,
                            const std::string& where) {
  for (const auto& [k, v] : obj.members) {
    bool ok = false;
    for (const char* allowed : known) ok |= k == allowed;
    if (!ok) bad_request("unknown field '" + k + "' in " + where);
  }
}

nn::Model parse_model_field(const JsonValue& doc, std::string& label) {
  const JsonValue* name = member(doc, "model");
  const JsonValue* text = member(doc, "model_text");
  if (name && text) bad_request("give either 'model' or 'model_text', not both");
  try {
    if (text) {
      label = "custom";
      return nn::parse_model(text->as_string());
    }
    if (name) {
      label = name->as_string();
      return core::zoo_model_by_name(label);
    }
  } catch (const ApiError&) {
    throw;
  } catch (const std::exception& e) {
    bad_request(e.what());
  }
  bad_request("request needs a 'model' (zoo name) or 'model_text'");
}

// The "config" object reuses core/config_io's INI path: each member becomes
// an INI key, so knob validation, unknown-key rejection, and defaults are
// exactly the CLI's. Numbers keep their original token for lossless
// int/double handling.
sim::AcceleratorConfig parse_config_field(const JsonValue& doc) {
  const JsonValue* obj = member(doc, "config");
  const JsonValue* ini_text = member(doc, "config_ini");
  if (obj && ini_text)
    bad_request("give either 'config' or 'config_ini', not both");
  try {
    if (ini_text)
      return core::config_from_ini(util::IniFile::parse(ini_text->as_string()));
    if (obj) {
      if (!obj->is_object()) bad_request("'config' must be an object");
      util::IniFile ini;
      for (const auto& [k, v] : obj->members) {
        switch (v.type) {
          case JsonValue::Type::Number: ini.set("", k, v.raw_number); break;
          case JsonValue::Type::String: ini.set("", k, v.text); break;
          case JsonValue::Type::Bool:
            ini.set("", k, v.boolean ? "true" : "false");
            break;
          default:
            bad_request("config." + k + " must be a number, string, or bool");
        }
      }
      return core::config_from_ini(ini);
    }
    return sim::AcceleratorConfig::squeezelerator();
  } catch (const ApiError&) {
    throw;
  } catch (const std::exception& e) {
    bad_request(e.what());
  }
}

sched::SimulationOptions parse_options_field(const JsonValue& doc) {
  sched::SimulationOptions opt;
  const JsonValue* o = member(doc, "options");
  if (!o) return opt;
  if (!o->is_object()) bad_request("'options' must be an object");
  reject_unknown_members(
      *o, {"objective", "timeline", "double_buffered", "tile_search", "fuse"},
      "options");
  try {
    if (const JsonValue* v = member(*o, "objective")) {
      if (v->as_string() == "cycles") opt.objective = sched::Objective::Cycles;
      else if (v->as_string() == "energy")
        opt.objective = sched::Objective::Energy;
      else bad_request("options.objective must be cycles|energy");
    }
    if (const JsonValue* v = member(*o, "timeline"))
      opt.tile_timeline = v->as_bool();
    if (const JsonValue* v = member(*o, "double_buffered"))
      opt.double_buffered = v->as_bool();
    if (const JsonValue* v = member(*o, "tile_search")) {
      opt.tile_search = v->as_bool();
      if (opt.tile_search) opt.tile_timeline = true;  // as the CLI implies
    }
    if (const JsonValue* v = member(*o, "fuse"))
      opt.fuse_pool_drain = v->as_bool();
  } catch (const ApiError&) {
    throw;
  } catch (const std::exception& e) {
    bad_request(std::string("options: ") + e.what());
  }
  return opt;
}

void options_to_canonical_json(const sched::SimulationOptions& opt,
                               util::JsonWriter& w) {
  w.key("options");
  w.begin_object();
  w.member("objective",
           opt.objective == sched::Objective::Energy ? "energy" : "cycles");
  w.member("timeline", opt.tile_timeline);
  w.member("double_buffered", opt.double_buffered);
  w.member("tile_search", opt.tile_search);
  w.member("fuse", opt.fuse_pool_drain);
  w.end_object();
}

// nn::Model has no default constructor, so requests are assembled through
// aggregate initialization once every part has parsed.
SimulateRequest parse_simulate_fields(const JsonValue& doc) {
  std::string label;
  nn::Model model = parse_model_field(doc, label);
  return SimulateRequest{std::move(model), std::move(label),
                         parse_config_field(doc), parse_options_field(doc)};
}

}  // namespace

SimulateRequest parse_simulate_request(const std::string& body) {
  const JsonValue doc = parse_body(body);
  reject_unknown_members(
      doc, {"model", "model_text", "config", "config_ini", "options"},
      "request");
  return parse_simulate_fields(doc);
}

SweepRequest parse_sweep_request(const std::string& body) {
  const JsonValue doc = parse_body(body);
  reject_unknown_members(
      doc, {"model", "model_text", "config", "config_ini", "options", "sweep"},
      "request");
  SweepRequest req{parse_simulate_fields(doc), /*knob=*/"", /*values=*/{}};

  const JsonValue* sweep = member(doc, "sweep");
  if (!sweep || !sweep->is_object())
    bad_request("sweep request needs a 'sweep' object");
  reject_unknown_members(*sweep, {"knob", "values", "screen", "screen_keep"},
                         "sweep");
  const JsonValue* knob = member(*sweep, "knob");
  const JsonValue* values = member(*sweep, "values");
  if (!knob || !values) bad_request("'sweep' needs 'knob' and 'values'");
  try {
    req.knob = knob->as_string();
  } catch (const std::exception&) {
    bad_request("sweep.knob must be a string");
  }
  if (req.knob != "rf_entries" && req.knob != "array_n" &&
      req.knob != "sparsity" && req.knob != "dram_bytes_per_cycle")
    bad_request("sweep.knob must be one of rf_entries|array_n|sparsity|"
                "dram_bytes_per_cycle, got '" + req.knob + "'");
  if (!values->is_array() || values->items.empty())
    bad_request("sweep.values must be a non-empty array of numbers");
  if (values->items.size() > 4096)
    bad_request("sweep.values is limited to 4096 points");
  for (const JsonValue& v : values->items) {
    if (!v.is_number()) bad_request("sweep.values must be numbers");
    req.values.push_back(v.number);
  }
  try {
    if (const JsonValue* v = member(*sweep, "screen")) req.screen = v->as_bool();
  } catch (const std::exception&) {
    bad_request("sweep.screen must be a bool");
  }
  if (const JsonValue* v = member(*sweep, "screen_keep")) {
    if (!req.screen) bad_request("sweep.screen_keep requires sweep.screen");
    if (!v->is_number() || !(v->number > 0.0) || v->number > 1.0)
      bad_request("sweep.screen_keep must be a number in (0, 1]");
    req.screen_keep = v->number;
  }
  return req;
}

WorkerRegistration parse_worker_registration(const std::string& body) {
  const JsonValue doc = parse_body(body);
  reject_unknown_members(doc, {"host", "port", "lease_ms"}, "request");
  WorkerRegistration reg;
  const JsonValue* host = member(doc, "host");
  const JsonValue* port = member(doc, "port");
  if (!host || !port) bad_request("registration needs 'host' and 'port'");
  try {
    reg.host = host->as_string();
  } catch (const std::exception&) {
    bad_request("'host' must be a string");
  }
  if (reg.host.empty() || reg.host.find(':') != std::string::npos)
    bad_request("'host' must be a bare address (no port)");
  if (!port->is_number() ||
      static_cast<double>(static_cast<int>(port->number)) != port->number ||
      port->number < 1 || port->number > 65535)
    bad_request("'port' must be an integer in [1, 65535]");
  reg.port = static_cast<int>(port->number);
  if (const JsonValue* lease = member(doc, "lease_ms")) {
    if (!lease->is_number() || lease->number < 0 ||
        static_cast<double>(static_cast<std::int64_t>(lease->number)) !=
            lease->number)
      bad_request("'lease_ms' must be a non-negative integer");
    reg.lease_ms = static_cast<std::int64_t>(lease->number);
  }
  return reg;
}

namespace {

std::vector<int> integral_values(const SweepRequest& req) {
  std::vector<int> out;
  for (const double v : req.values) {
    const int i = static_cast<int>(v);
    if (static_cast<double>(i) != v)
      bad_request("sweep.values for " + req.knob + " must be integers");
    out.push_back(i);
  }
  return out;
}

}  // namespace

std::vector<std::pair<std::string, sim::AcceleratorConfig>> sweep_configs(
    const SweepRequest& req) {
  if (req.knob == "rf_entries")
    return core::sweep_rf_entries(req.base.config, integral_values(req));
  if (req.knob == "array_n")
    return core::sweep_array_n(req.base.config, integral_values(req));
  if (req.knob == "sparsity")
    return core::sweep_sparsity(req.base.config, req.values);
  return core::sweep_dram_bandwidth(req.base.config, req.values);
}

std::string canonical_key(const SimulateRequest& req) {
  std::ostringstream os;
  util::JsonWriter w(os, /*indent=*/0);
  w.begin_object();
  w.member("op", "simulate");
  w.member("model", nn::serialize_model(req.model));
  w.member("config", core::config_to_ini(req.config));
  options_to_canonical_json(req.options, w);
  w.end_object();
  return os.str();
}

std::string canonical_key(const SweepRequest& req) {
  std::ostringstream os;
  util::JsonWriter w(os, /*indent=*/0);
  w.begin_object();
  w.member("op", "sweep");
  // The sweep label is embedded in the response's "sweep" name, so two
  // spellings of the same network must not share response bytes.
  w.member("label", req.base.model_label);
  w.member("model", nn::serialize_model(req.base.model));
  w.member("config", core::config_to_ini(req.base.config));
  options_to_canonical_json(req.base.options, w);
  w.member("knob", req.knob);
  w.key("values");
  w.begin_array();
  for (const double v : req.values) w.value(v);
  w.end_array();
  // Appended only when screening: an unscreened request's key (and any
  // cached body stored under it) is byte-identical to the pre-screening era.
  if (req.screen) {
    w.member("screen", true);
    w.member("screen_keep", req.screen_keep);
  }
  w.end_object();
  return os.str();
}

std::string run_simulate(const SimulateRequest& req,
                         sched::PlanArtifact* compiled_plan) {
  try {
    const sim::NetworkResult result =
        sched::simulate_network(req.model, req.config, req.options);
    if (compiled_plan)
      *compiled_plan =
          sched::plan_from_result(req.model, req.config, req.options, result);
    return core::json_report_string(req.model, result, req.options.units);
  } catch (const std::exception& e) {
    bad_request(e.what());
  }
}

std::string run_simulate_with_plan(const SimulateRequest& req,
                                   const sched::Program& program) {
  try {
    const sim::NetworkResult result =
        sched::simulate_with_plan(req.model, req.config, req.options, program);
    return core::json_report_string(req.model, result, req.options.units);
  } catch (const std::exception& e) {
    bad_request(e.what());
  }
}

std::string run_sweep(const SweepRequest& req, core::SweepJournal* journal,
                      SweepRunStats* stats) {
  core::SweepOutcome outcome;
  try {
    core::SweepOptions sweep_opt;
    sweep_opt.objective = req.base.options.objective;
    sweep_opt.units = req.base.options.units;
    sweep_opt.tile_timeline = req.base.options.tile_timeline;
    sweep_opt.double_buffered = req.base.options.double_buffered;
    sweep_opt.tile_search = req.base.options.tile_search;
    sweep_opt.fuse_pool_drain = req.base.options.fuse_pool_drain;
    sweep_opt.screen = req.screen;
    sweep_opt.screen_keep = req.screen_keep;
    sweep_opt.journal = journal;
    outcome = core::evaluate_designs_checked(req.base.model,
                                             sweep_configs(req), sweep_opt);
  } catch (const ApiError&) {
    throw;
  } catch (const std::exception& e) {
    bad_request(e.what());
  }
  if (stats) {
    stats->points = outcome.points.size();
    stats->point_errors = outcome.errors.size();
    stats->resumed = outcome.resumed;
    stats->screen_points = outcome.screen_points;
    stats->screen_kept = outcome.screen_kept;
    stats->screen_error_max_pct = outcome.screen_error_max_pct;
  }
  std::ostringstream os;
  core::write_sweep_outcome_json(req.knob + " on " + req.base.model_label,
                                 outcome, os);
  return os.str();
}

namespace {

SimService::Result serve_cached(SimCache* cache, const std::string& key,
                                const std::function<std::string()>& execute) {
  if (!cache) return {execute(), false, false, {}};
  if (auto hit = cache->get(key)) return {*hit, true, false, {}};
  SimService::Result r{execute(), false, false, {}};
  cache->put(key, r.body);
  return r;
}

}  // namespace

SimService::Result SimService::simulate(const std::string& request_body) {
  const SimulateRequest req = parse_simulate_request(request_body);
  const std::string key = canonical_key(req);
  if (!plans_)
    return serve_cached(cache_, key, [&] { return run_simulate(req); });

  // Plan-aware path: response cache, then plan cache, then a fresh compile
  // (which seeds the plan cache for next time).
  if (cache_) {
    if (auto hit = cache_->get(key)) return {*hit, true, false, {}};
  }
  Result r;
  const std::uint64_t model_hash = sched::model_identity_hash(req.model);
  if (auto plan = plans_->get(key, model_hash, req.config, req.options)) {
    try {
      r.body = run_simulate_with_plan(req, plan->program);
      r.plan_hit = true;
    } catch (const std::exception&) {
      // A plan may never fail a request: any replay defect (a stale or
      // hand-edited artifact that slipped past the semantic match) falls
      // back to the fresh-compile path below.
      r.body.clear();
    }
  }
  if (!r.plan_hit) {
    sched::PlanArtifact compiled;
    r.body = run_simulate(req, &compiled);
    plans_->put(key, compiled);
  }
  if (cache_) cache_->put(key, r.body);
  return r;
}

SimService::Result SimService::sweep(const std::string& request_body) {
  const SweepRequest req = parse_sweep_request(request_body);
  const std::string key = canonical_key(req);
  if (cache_) {
    if (auto hit = cache_->get(key)) return {*hit, true, false, {}};
  }
  Result r;
  r.body = coordinator_ ? coordinator_->run_sweep(req, journal_, &r.sweep)
                        : run_sweep(req, journal_, &r.sweep);
  // A partial response is never cached: its failures may be transient
  // (fault injection, resource pressure), and a cached body would pin them
  // until eviction. The journal still holds every point that did succeed.
  if (cache_ && !r.sweep.partial()) cache_->put(key, r.body);
  return r;
}

}  // namespace sqz::serve
