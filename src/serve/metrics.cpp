#include "serve/metrics.h"

#include <sstream>

#include "util/json.h"

namespace sqz::serve {

void Metrics::request_started() {
  std::lock_guard<std::mutex> lock(mu_);
  ++s_.in_flight;
}

void Metrics::request_finished() {
  std::lock_guard<std::mutex> lock(mu_);
  if (s_.in_flight > 0) --s_.in_flight;
}

void Metrics::record_request(double seconds, int status) {
  std::lock_guard<std::mutex> lock(mu_);
  if (s_.requests_total == 0 || seconds < s_.latency_min_s)
    s_.latency_min_s = seconds;
  if (seconds > s_.latency_max_s) s_.latency_max_s = seconds;
  latency_sum_s_ += seconds;
  ++s_.requests_total;
  s_.latency_mean_s = latency_sum_s_ / static_cast<double>(s_.requests_total);
  if (status >= 500) ++s_.responses_5xx;
  else if (status >= 400) ++s_.responses_4xx;
  else if (status >= 200 && status < 300) ++s_.responses_2xx;
}

void Metrics::record_sweep(std::uint64_t points, std::uint64_t point_errors,
                           std::uint64_t resumed, std::uint64_t screen_points,
                           std::uint64_t screen_kept,
                           double screen_error_max_pct) {
  std::lock_guard<std::mutex> lock(mu_);
  s_.sweep_points_total += points;
  s_.sweep_point_errors_total += point_errors;
  if (point_errors > 0) ++s_.sweeps_partial_total;
  s_.sweep_resumed_total += resumed;
  s_.screen_points += screen_points;
  s_.screen_kept += screen_kept;
  if (screen_error_max_pct > s_.screen_error_max_pct)
    s_.screen_error_max_pct = screen_error_max_pct;
}

void Metrics::record_shed() {
  std::lock_guard<std::mutex> lock(mu_);
  ++s_.shed_total;
}

void Metrics::record_timeout() {
  std::lock_guard<std::mutex> lock(mu_);
  ++s_.timeouts_total;
}

void Metrics::record_oversize() {
  std::lock_guard<std::mutex> lock(mu_);
  ++s_.oversize_total;
}

void Metrics::record_idle_closed() {
  std::lock_guard<std::mutex> lock(mu_);
  ++s_.idle_closed_total;
}

void Metrics::record_accept_backoff() {
  std::lock_guard<std::mutex> lock(mu_);
  ++s_.accept_backoff_total;
}

void Metrics::set_coord_workers_up(std::uint64_t up) {
  std::lock_guard<std::mutex> lock(mu_);
  s_.coord_workers_up = up;
}

void Metrics::record_coord_dispatch(std::uint64_t points) {
  std::lock_guard<std::mutex> lock(mu_);
  s_.coord_points_dispatched += points;
}

void Metrics::record_coord_requeue(std::uint64_t points) {
  std::lock_guard<std::mutex> lock(mu_);
  s_.coord_points_requeued += points;
}

void Metrics::record_coord_steal() {
  std::lock_guard<std::mutex> lock(mu_);
  ++s_.coord_steals;
}

void Metrics::record_coord_singleflight_hit() {
  std::lock_guard<std::mutex> lock(mu_);
  ++s_.coord_singleflight_hits;
}

void Metrics::record_coord_ejection() {
  std::lock_guard<std::mutex> lock(mu_);
  ++s_.coord_worker_ejections;
}

void Metrics::record_coord_retries(std::uint64_t retries) {
  std::lock_guard<std::mutex> lock(mu_);
  s_.coord_retries += retries;
}

void Metrics::coord_chunk_started() {
  std::lock_guard<std::mutex> lock(mu_);
  ++s_.coord_chunks_inflight;
}

void Metrics::coord_chunk_finished() {
  std::lock_guard<std::mutex> lock(mu_);
  if (s_.coord_chunks_inflight > 0) --s_.coord_chunks_inflight;
}

void Metrics::record_coord_register() {
  std::lock_guard<std::mutex> lock(mu_);
  ++s_.coord_registers;
}

void Metrics::record_coord_lease_expiration() {
  std::lock_guard<std::mutex> lock(mu_);
  ++s_.coord_lease_expirations;
}

void Metrics::set_coord_epoch(std::uint64_t epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  s_.coord_epoch = epoch;
}

void Metrics::record_coord_takeover() {
  std::lock_guard<std::mutex> lock(mu_);
  ++s_.coord_takeovers;
}

void Metrics::record_worker_joined() {
  std::lock_guard<std::mutex> lock(mu_);
  ++s_.worker_joined;
}

void Metrics::record_worker_drain() {
  std::lock_guard<std::mutex> lock(mu_);
  ++s_.worker_drains;
}

Metrics::Snapshot Metrics::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return s_;
}

std::string Metrics::render(const SimCache::Stats& cache,
                            const PlanCache::Stats& plans) const {
  const Snapshot s = snapshot();
  std::ostringstream out;
  const auto counter = [&](const char* name, const char* help, double v) {
    out << "# HELP " << name << " " << help << "\n";
    out << "# TYPE " << name
        << (std::string(name).find("_total") != std::string::npos ? " counter"
                                                                  : " gauge")
        << "\n";
    out << name << " " << util::json_number(v) << "\n";
  };
  counter("sqzserved_requests_total", "Requests served (any status).",
          static_cast<double>(s.requests_total));
  counter("sqzserved_responses_2xx_total", "Successful responses.",
          static_cast<double>(s.responses_2xx));
  counter("sqzserved_responses_4xx_total", "Client-error responses.",
          static_cast<double>(s.responses_4xx));
  counter("sqzserved_responses_5xx_total", "Server-error responses.",
          static_cast<double>(s.responses_5xx));
  counter("sqzserved_requests_in_flight", "Accepted, response not yet sent.",
          static_cast<double>(s.in_flight));
  counter("sqzserved_request_latency_seconds_min",
          "Fastest request so far (0 before the first).", s.latency_min_s);
  counter("sqzserved_request_latency_seconds_mean",
          "Mean request handle time.", s.latency_mean_s);
  counter("sqzserved_request_latency_seconds_max",
          "Slowest request so far.", s.latency_max_s);
  counter("sqzserved_shed_total",
          "Connections shed with 503 at the --max-connections cap.",
          static_cast<double>(s.shed_total));
  counter("sqzserved_timeouts_total",
          "Requests that hit the --request-timeout-ms deadline.",
          static_cast<double>(s.timeouts_total));
  counter("sqzserved_oversize_total",
          "Requests rejected with 413 (body or headers over cap).",
          static_cast<double>(s.oversize_total));
  counter("sqzserved_idle_closed_total",
          "Keep-alive connections closed at the idle deadline.",
          static_cast<double>(s.idle_closed_total));
  counter("sqzserved_accept_backoff_total",
          "Accept failures (EMFILE/ENFILE/ENOMEM) absorbed by backoff.",
          static_cast<double>(s.accept_backoff_total));
  counter("sqzserved_sweep_points_total",
          "Design points evaluated successfully across sweeps.",
          static_cast<double>(s.sweep_points_total));
  counter("sqzserved_sweep_point_errors_total",
          "Design points that failed and were reported as structured errors.",
          static_cast<double>(s.sweep_point_errors_total));
  counter("sqzserved_sweeps_partial_total",
          "Sweep responses that carried at least one point error.",
          static_cast<double>(s.sweeps_partial_total));
  counter("sqzserved_sweep_resumed_total",
          "Design points restored from the sweep journal without re-simulating.",
          static_cast<double>(s.sweep_resumed_total));
  counter("sqzserved_screen_points_total",
          "Design points scored by the analytical estimator (phase 1).",
          static_cast<double>(s.screen_points));
  counter("sqzserved_screen_kept_total",
          "Screened points retained and re-simulated cycle-exactly (phase 2).",
          static_cast<double>(s.screen_kept));
  counter("sqzserved_screen_error_max_pct",
          "Worst estimator cycle error (percent) observed over re-simulated "
          "bands.",
          s.screen_error_max_pct);
  counter("sqzserved_coord_workers_up",
          "Usable (Healthy or Suspect) workers in the coordinator fleet.",
          static_cast<double>(s.coord_workers_up));
  counter("sqzserved_coord_points_dispatched_total",
          "Design points posted to workers (steals and requeues included).",
          static_cast<double>(s.coord_points_dispatched));
  counter("sqzserved_coord_points_requeued_total",
          "Design points re-dispatched after a failed chunk.",
          static_cast<double>(s.coord_points_requeued));
  counter("sqzserved_coord_steals_total",
          "Straggler chunks re-dispatched to another worker (work stealing).",
          static_cast<double>(s.coord_steals));
  counter("sqzserved_coord_singleflight_hits_total",
          "Identical in-flight chunks deduplicated across sweeps.",
          static_cast<double>(s.coord_singleflight_hits));
  counter("sqzserved_coord_worker_ejections_total",
          "Workers ejected from the ring by the health state machine.",
          static_cast<double>(s.coord_worker_ejections));
  counter("sqzserved_coord_retries_total",
          "Extra same-worker HTTP attempts beyond the first, per dispatch.",
          static_cast<double>(s.coord_retries));
  counter("sqzserved_coord_chunks_inflight",
          "Chunks currently posted to workers, response pending.",
          static_cast<double>(s.coord_chunks_inflight));
  counter("sqzserved_coord_registers_total",
          "Worker registrations accepted (first joins, rejoins, renewals).",
          static_cast<double>(s.coord_registers));
  counter("sqzserved_coord_lease_expirations_total",
          "Worker leases that lapsed without renewal (member departed).",
          static_cast<double>(s.coord_lease_expirations));
  counter("sqzserved_coord_epoch",
          "Consistent-hash ring version; bumps on every membership change.",
          static_cast<double>(s.coord_epoch));
  counter("sqzserved_coord_takeovers_total",
          "Standby coordinator promotions after a primary failure.",
          static_cast<double>(s.coord_takeovers));
  counter("sqzserved_worker_joined_total",
          "Times this worker's --join registration was (re)established.",
          static_cast<double>(s.worker_joined));
  counter("sqzserved_worker_drains_total",
          "Graceful SIGTERM drains completed (deregistered before exit).",
          static_cast<double>(s.worker_drains));
  counter("sqzserved_cache_hits_total", "Simulation results served from cache.",
          static_cast<double>(cache.hits));
  counter("sqzserved_cache_disk_hits_total",
          "Cache hits that came from the disk tier.",
          static_cast<double>(cache.disk_hits));
  counter("sqzserved_cache_misses_total", "Simulations executed.",
          static_cast<double>(cache.misses));
  counter("sqzserved_cache_evictions_total", "Memory-tier LRU evictions.",
          static_cast<double>(cache.evictions));
  counter("sqzserved_cache_entries", "Memory-tier resident entries.",
          static_cast<double>(cache.entries));
  counter("sqzserved_cache_quarantined_total",
          "Corrupt disk-cache entries quarantined (*.bad).",
          static_cast<double>(cache.disk_quarantined));
  counter("sqzserved_cache_disk_errors_total",
          "Disk-tier read/write failures absorbed.",
          static_cast<double>(cache.disk_errors));
  counter("sqzserved_cache_disk_demoted",
          "1 when persistent disk failures demoted the cache to memory-only.",
          cache.disk_demoted ? 1.0 : 0.0);
  counter("sqzserved_plan_hits_total",
          "Simulations served from a cached compiled plan (no compile search).",
          static_cast<double>(plans.hits));
  counter("sqzserved_plan_disk_hits_total",
          "Plan-cache hits that came from the disk tier.",
          static_cast<double>(plans.disk_hits));
  counter("sqzserved_plan_misses_total",
          "Simulations that compiled a fresh plan.",
          static_cast<double>(plans.misses));
  counter("sqzserved_plan_corrupt_total",
          "Defective plan artifacts quarantined (*.bad).",
          static_cast<double>(plans.corrupt));
  counter("sqzserved_plan_entries", "Plan-cache memory-tier resident entries.",
          static_cast<double>(plans.entries));
  counter("sqzserved_plan_disk_errors_total",
          "Plan-cache disk read/write failures absorbed.",
          static_cast<double>(plans.disk_errors));
  return out.str();
}

}  // namespace sqz::serve
