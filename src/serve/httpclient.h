// Reusable blocking HTTP/1.1 client for the simulation service.
//
// Extracted from the message layer (serve/http.h) so every client in the
// tree — `sqzsim --connect`, the coordinator's chunk dispatch
// (serve/coordinator.h), and the worker-health prober
// (serve/workerpool.h) — shares one transport with one retry discipline:
//
//   * http_fetch: connect, send one request, read one response, with a
//     poll-based response deadline. Failures are classified (FetchError)
//     so policy can tell a refused connection from a protocol violation.
//   * http_fetch_retry: bounded retries with exponential backoff and
//     decorrelated jitter (sleep_n = clamp(uniform[base, 3 * sleep_{n-1}],
//     base, cap)), seeded so chaos tests see a deterministic sleep
//     sequence. A 503's Retry-After is honored as a floor, still capped.
//     4xx responses are never retried — they are the client's own fault.
//
// serve/http.h re-includes this header, so existing client code (and the
// retry chaos suites) compile unchanged against either include.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "serve/http.h"

namespace sqz::serve {

/// Client-side failure, classified so retry policy can be principled:
/// Connect and Timeout never delivered a byte of response; Io lost the
/// connection mid-exchange; Parse means the peer spoke garbage.
class FetchError : public std::runtime_error {
 public:
  enum class Kind { Connect, Timeout, Io, Parse };

  FetchError(Kind kind, const std::string& what)
      : std::runtime_error(what), kind_(kind) {}

  Kind kind() const noexcept { return kind_; }

  /// Worth retrying? Everything except a protocol violation: the service
  /// is idempotent (content-addressed cache), so replays are safe.
  bool retryable() const noexcept { return kind_ != Kind::Parse; }

 private:
  Kind kind_;
};

/// A split "host:port" endpoint (numeric IPv4 or "localhost").
struct HostPort {
  std::string host;
  int port = 0;
};

/// Split "host:port", validating the port is an integer in [1, 65535].
/// Throws std::invalid_argument naming `flag` on any violation — shared by
/// `sqzsim --connect` and `sqzserved --workers` so both report endpoint
/// mistakes identically.
HostPort parse_host_port(const std::string& spec, const std::string& flag);

/// Blocking client: connect to host:port (numeric IPv4 or "localhost"),
/// send `req`, read one response. Throws FetchError on connect, I/O,
/// timeout, or parse failure. The Host header is filled in if absent.
HttpResponse http_fetch(const std::string& host, int port, HttpRequest req,
                        int timeout_ms = 60000);

/// Bounded-retry policy: exponential backoff with decorrelated jitter
/// (sleep_n = clamp(uniform[base_ms, 3 * sleep_{n-1}], base_ms, cap_ms)),
/// seeded so the sleep sequence — and therefore a chaos test — is
/// deterministic. A 503 with Retry-After sleeps at least that long, still
/// capped at cap_ms.
struct RetryPolicy {
  int max_attempts = 1;  ///< Total tries, including the first (>= 1).
  int base_ms = 50;
  int cap_ms = 2000;
  std::uint64_t seed = 0x5eedULL;  ///< Jitter stream seed.
};

/// http_fetch plus retries on retryable FetchError and on 503 responses.
/// Never retries other statuses (a 4xx is the client's own fault and will
/// not improve). Returns the final response; rethrows the last FetchError
/// when all attempts fail. `attempts_out` (if non-null) reports how many
/// tries ran.
HttpResponse http_fetch_retry(const std::string& host, int port,
                              const HttpRequest& req, int timeout_ms,
                              const RetryPolicy& policy,
                              int* attempts_out = nullptr);

}  // namespace sqz::serve
