// Minimal HTTP/1.1 message layer for the simulation service.
//
// Same spirit as util/json: dependency-free, strict, and unit-testable
// without sockets. Messages are parsed incrementally from a byte buffer
// (parse_http_request / parse_http_response return NeedMore until a full
// message is buffered), so the connection loop in serve/server.cpp and the
// blocking client share one grammar. Only what the service needs is
// implemented: Content-Length framing (no chunked transfer), no multi-line
// headers, one message at a time.
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace sqz::serve {

struct HttpRequest {
  std::string method;
  std::string target;   ///< Origin-form path, e.g. "/v1/simulate".
  std::string version = "HTTP/1.1";
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  /// Case-insensitive header lookup; nullptr when absent.
  const std::string* header(const std::string& name) const;

  /// True when the peer asked for the connection to close after this
  /// exchange ("Connection: close", or an HTTP/1.0 request).
  bool wants_close() const;

  /// Wire form (adds Content-Length when a body is present).
  std::string serialize() const;
};

struct HttpResponse {
  int status = 200;
  std::string reason = "OK";
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  const std::string* header(const std::string& name) const;

  /// Wire form; always emits Content-Length so the peer can frame the body.
  std::string serialize() const;
};

/// Build a response with Content-Type set and the standard reason phrase
/// for `status` (200, 400, 404, 405, 500; anything else gets "Error").
HttpResponse make_response(int status, const std::string& content_type,
                           std::string body);

enum class ParseStatus { Ok, NeedMore, Error };

/// Parse one request from the front of `buffer`. On Ok, `out` is filled and
/// `consumed` is the byte count to strip before parsing the next message.
/// On Error, `error` (if non-null) describes the violation. Limits: 64 KiB
/// of headers, 64 MiB of body.
ParseStatus parse_http_request(const std::string& buffer, HttpRequest& out,
                               std::size_t& consumed, std::string* error);

/// Same, for one response.
ParseStatus parse_http_response(const std::string& buffer, HttpResponse& out,
                                std::size_t& consumed, std::string* error);

/// Blocking client: connect to host:port (numeric IPv4 or "localhost"),
/// send `req`, read one response. Throws std::runtime_error on connect,
/// I/O, timeout, or parse failure. The Host header is filled in if absent.
HttpResponse http_fetch(const std::string& host, int port, HttpRequest req,
                        int timeout_ms = 60000);

}  // namespace sqz::serve
