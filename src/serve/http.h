// Minimal HTTP/1.1 message layer for the simulation service.
//
// Same spirit as util/json: dependency-free, strict, and unit-testable
// without sockets. Messages are parsed incrementally from a byte buffer
// (parse_http_request / parse_http_response return NeedMore until a full
// message is buffered), so the connection loop in serve/server.cpp and the
// blocking client share one grammar. Only what the service needs is
// implemented: Content-Length framing (no chunked transfer), no multi-line
// headers, one message at a time.
//
// The client side — http_fetch, FetchError, and the retry/backoff wrapper —
// lives in serve/httpclient.h (re-included below for compatibility, so code
// written against the original one-header layout keeps compiling).
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace sqz::serve {

struct HttpRequest {
  std::string method;
  std::string target;   ///< Origin-form path, e.g. "/v1/simulate".
  std::string version = "HTTP/1.1";
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  /// Case-insensitive header lookup; nullptr when absent.
  const std::string* header(const std::string& name) const;

  /// True when the peer asked for the connection to close after this
  /// exchange ("Connection: close", or an HTTP/1.0 request).
  bool wants_close() const;

  /// Wire form (adds Content-Length when a body is present).
  std::string serialize() const;
};

struct HttpResponse {
  int status = 200;
  std::string reason = "OK";
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  const std::string* header(const std::string& name) const;

  /// Wire form; always emits Content-Length so the peer can frame the body.
  std::string serialize() const;
};

/// Build a response with Content-Type set and the standard reason phrase
/// for `status` (200, 400, 404, 405, 408, 413, 500, 503; anything else
/// gets "Error").
HttpResponse make_response(int status, const std::string& content_type,
                           std::string body);

enum class ParseStatus {
  Ok,
  NeedMore,
  Error,     ///< Protocol violation; the connection cannot recover.
  TooLarge,  ///< Well-formed but over a ParseLimits cap (maps to 413).
};

/// Size caps enforced while parsing. The server passes its
/// `--max-body-bytes` here; exceeding a cap yields TooLarge, which the
/// server answers with 413 instead of a generic 400.
struct ParseLimits {
  std::size_t max_header_bytes = 64 * 1024;
  std::size_t max_body_bytes = 64 * 1024 * 1024;
};

/// Parse one request from the front of `buffer`. On Ok, `out` is filled and
/// `consumed` is the byte count to strip before parsing the next message.
/// On Error/TooLarge, `error` (if non-null) describes the violation.
ParseStatus parse_http_request(const std::string& buffer, HttpRequest& out,
                               std::size_t& consumed, std::string* error,
                               const ParseLimits& limits = {});

/// Same, for one response.
ParseStatus parse_http_response(const std::string& buffer, HttpResponse& out,
                                std::size_t& consumed, std::string* error,
                                const ParseLimits& limits = {});

}  // namespace sqz::serve

// Compatibility: the client half of the original single-header layout.
// Placed after the message types so either include order works.
#include "serve/httpclient.h"
