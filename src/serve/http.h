// Minimal HTTP/1.1 message layer for the simulation service.
//
// Same spirit as util/json: dependency-free, strict, and unit-testable
// without sockets. Messages are parsed incrementally from a byte buffer
// (parse_http_request / parse_http_response return NeedMore until a full
// message is buffered), so the connection loop in serve/server.cpp and the
// blocking client share one grammar. Only what the service needs is
// implemented: Content-Length framing (no chunked transfer), no multi-line
// headers, one message at a time.
//
// The client side distinguishes failure classes (FetchError::Kind) so the
// retry wrapper can tell a refused connection or timeout (retryable — the
// request never ran, or ran to completion on the server and is cached) from
// a protocol violation (not retryable). http_fetch_retry layers bounded
// retries with exponential backoff and decorrelated jitter on top; the
// jitter stream is seeded, so tests see a deterministic sleep sequence.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace sqz::serve {

struct HttpRequest {
  std::string method;
  std::string target;   ///< Origin-form path, e.g. "/v1/simulate".
  std::string version = "HTTP/1.1";
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  /// Case-insensitive header lookup; nullptr when absent.
  const std::string* header(const std::string& name) const;

  /// True when the peer asked for the connection to close after this
  /// exchange ("Connection: close", or an HTTP/1.0 request).
  bool wants_close() const;

  /// Wire form (adds Content-Length when a body is present).
  std::string serialize() const;
};

struct HttpResponse {
  int status = 200;
  std::string reason = "OK";
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  const std::string* header(const std::string& name) const;

  /// Wire form; always emits Content-Length so the peer can frame the body.
  std::string serialize() const;
};

/// Build a response with Content-Type set and the standard reason phrase
/// for `status` (200, 400, 404, 405, 408, 413, 500, 503; anything else
/// gets "Error").
HttpResponse make_response(int status, const std::string& content_type,
                           std::string body);

enum class ParseStatus {
  Ok,
  NeedMore,
  Error,     ///< Protocol violation; the connection cannot recover.
  TooLarge,  ///< Well-formed but over a ParseLimits cap (maps to 413).
};

/// Size caps enforced while parsing. The server passes its
/// `--max-body-bytes` here; exceeding a cap yields TooLarge, which the
/// server answers with 413 instead of a generic 400.
struct ParseLimits {
  std::size_t max_header_bytes = 64 * 1024;
  std::size_t max_body_bytes = 64 * 1024 * 1024;
};

/// Parse one request from the front of `buffer`. On Ok, `out` is filled and
/// `consumed` is the byte count to strip before parsing the next message.
/// On Error/TooLarge, `error` (if non-null) describes the violation.
ParseStatus parse_http_request(const std::string& buffer, HttpRequest& out,
                               std::size_t& consumed, std::string* error,
                               const ParseLimits& limits = {});

/// Same, for one response.
ParseStatus parse_http_response(const std::string& buffer, HttpResponse& out,
                                std::size_t& consumed, std::string* error,
                                const ParseLimits& limits = {});

/// Client-side failure, classified so retry policy can be principled:
/// Connect and Timeout never delivered a byte of response; Io lost the
/// connection mid-exchange; Parse means the peer spoke garbage.
class FetchError : public std::runtime_error {
 public:
  enum class Kind { Connect, Timeout, Io, Parse };

  FetchError(Kind kind, const std::string& what)
      : std::runtime_error(what), kind_(kind) {}

  Kind kind() const noexcept { return kind_; }

  /// Worth retrying? Everything except a protocol violation: the service
  /// is idempotent (content-addressed cache), so replays are safe.
  bool retryable() const noexcept { return kind_ != Kind::Parse; }

 private:
  Kind kind_;
};

/// Blocking client: connect to host:port (numeric IPv4 or "localhost"),
/// send `req`, read one response. Throws FetchError on connect, I/O,
/// timeout, or parse failure. The Host header is filled in if absent.
HttpResponse http_fetch(const std::string& host, int port, HttpRequest req,
                        int timeout_ms = 60000);

/// Bounded-retry policy: exponential backoff with decorrelated jitter
/// (sleep_n = clamp(uniform[base_ms, 3 * sleep_{n-1}], base_ms, cap_ms)),
/// seeded so the sleep sequence — and therefore a chaos test — is
/// deterministic. A 503 with Retry-After sleeps at least that long, still
/// capped at cap_ms.
struct RetryPolicy {
  int max_attempts = 1;  ///< Total tries, including the first (>= 1).
  int base_ms = 50;
  int cap_ms = 2000;
  std::uint64_t seed = 0x5eedULL;  ///< Jitter stream seed.
};

/// http_fetch plus retries on retryable FetchError and on 503 responses.
/// Never retries other statuses (a 4xx is the client's own fault and will
/// not improve). Returns the final response; rethrows the last FetchError
/// when all attempts fail. `attempts_out` (if non-null) reports how many
/// tries ran.
HttpResponse http_fetch_retry(const std::string& host, int port,
                              const HttpRequest& req, int timeout_ms,
                              const RetryPolicy& policy,
                              int* attempts_out = nullptr);

}  // namespace sqz::serve
