// Coordinator mode: shard POST /v1/sweep across a fleet of stock workers
// (ARCHITECTURE.md "Distributed sweeps").
//
// One sqzserved started with --workers host:port,... stops simulating
// sweeps itself and becomes a dispatcher: the sweep's design points are
// routed over the WorkerPool's consistent-hash ring (so each worker's
// simcache/plancache stays hot on a stable shard), grouped into chunks,
// and posted to workers as ordinary /v1/sweep requests over
// serve/httpclient. The response is assembled from the chunk results and
// re-rendered with the same core/dse writer a single node uses — so by
// the journal round-trip property (util/json.h shortest round-trip
// numbers) the distributed dump is byte-identical to the uninterrupted
// single-node run.
//
// Worker death is a routine event, not an error:
//   * a failed chunk (refused connection, timeout, 5xx, injected
//     "coord.dispatch" fault) is requeued to the next worker on the ring,
//     up to max_requeues; exhaustion surfaces each point as a structured
//     PointError with phase "dispatch" — the sweep never hangs or aborts;
//   * chunks in flight longer than straggler_ms are re-dispatched to a
//     different usable worker (work stealing); the first valid result
//     wins and the loser is discarded by point identity. The
//     "coord.steal" fault point stalls a primary dispatch to force this
//     path deterministically;
//   * identical chunks already in flight are deduplicated (single-flight):
//     a second identical sweep attaches to the running chunk's result
//     instead of re-dispatching it;
//   * with a --sweep-journal, every completed point is appended to the
//     coordinator's own journal as chunk results land, so a coordinator
//     SIGKILL + restart re-dispatches only the unfinished points and the
//     resumed dump is byte-identical.
//
// Screened sweeps (sweep.screen) are rejected with 400: the retained
// Pareto band is a property of the whole point set and does not shard.
// /v1/simulate is always served locally by a coordinator.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "serve/api.h"
#include "serve/workerpool.h"

namespace sqz::core {
class SweepJournal;
}

namespace sqz::serve {

struct CoordinatorOptions {
  /// The static fleet, as "host:port" strings (sqzserved --workers).
  /// Empty = coordinator mode disabled.
  std::vector<std::string> workers;

  ProbePolicy probe;  ///< Health-check cadence and ejection thresholds.

  int chunk_points = 4;     ///< Design points per dispatched chunk.
  int straggler_ms = 2000;  ///< In-flight age that triggers work stealing.

  /// Per-dispatch HTTP budget: attempts against one worker (with the
  /// httpclient backoff/jitter discipline) and the response deadline.
  int dispatch_attempts = 2;
  int dispatch_base_ms = 50;
  int dispatch_timeout_ms = 60000;

  /// Re-dispatches of one chunk to other workers after its dispatch
  /// failed; exhaustion turns the chunk's points into "dispatch"
  /// PointErrors.
  int max_requeues = 3;
};

class Coordinator {
 public:
  /// Parses and validates the worker list (throws std::invalid_argument on
  /// a malformed endpoint). `metrics` may be null.
  Coordinator(const CoordinatorOptions& options, Metrics* metrics);
  ~Coordinator();  ///< Calls stop().

  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  void start();  ///< Start the worker-health prober.
  void stop();

  WorkerPool& pool() { return pool_; }
  const CoordinatorOptions& options() const { return options_; }

  /// Shard, dispatch, and merge one sweep. Blocking; safe to call from
  /// multiple connection handlers concurrently (identical in-flight chunks
  /// are deduplicated across calls). Journals completed points to
  /// `journal` (may be null) as chunks land. Throws ApiError(400) for
  /// screened sweeps.
  std::string run_sweep(const SweepRequest& req, core::SweepJournal* journal,
                        SweepRunStats* stats);

  /// One chunk's in-flight result record — the single-flight unit. Defined
  /// in coordinator.cpp; public so the dispatch machinery can name it.
  struct Flight;

 private:
  /// The single-flight table: chunk request body -> in-flight result.
  std::shared_ptr<Flight> attach_flight(const std::string& chunk_body,
                                        std::size_t chunk_size, bool& owner);
  void finish_flight(const std::string& chunk_body,
                     const std::shared_ptr<Flight>& flight);

  CoordinatorOptions options_;
  Metrics* metrics_;
  WorkerPool pool_;

  std::mutex flights_mu_;
  std::unordered_map<std::string, std::shared_ptr<Flight>> flights_;
};

}  // namespace sqz::serve
