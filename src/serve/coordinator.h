// Coordinator mode: shard POST /v1/sweep across a fleet of stock workers
// (ARCHITECTURE.md "Distributed sweeps").
//
// One sqzserved started with --workers host:port,... stops simulating
// sweeps itself and becomes a dispatcher: the sweep's design points are
// routed over the WorkerPool's consistent-hash ring (so each worker's
// simcache/plancache stays hot on a stable shard), grouped into chunks,
// and posted to workers as ordinary /v1/sweep requests over
// serve/httpclient. The response is assembled from the chunk results and
// re-rendered with the same core/dse writer a single node uses — so by
// the journal round-trip property (util/json.h shortest round-trip
// numbers) the distributed dump is byte-identical to the uninterrupted
// single-node run.
//
// Worker death is a routine event, not an error:
//   * a failed chunk (refused connection, timeout, 5xx, injected
//     "coord.dispatch" fault) is requeued to the next worker on the ring,
//     up to max_requeues; exhaustion surfaces each point as a structured
//     PointError with phase "dispatch" — the sweep never hangs or aborts;
//   * chunks in flight longer than straggler_ms are re-dispatched to a
//     different usable worker (work stealing); the first valid result
//     wins and the loser is discarded by point identity. The
//     "coord.steal" fault point stalls a primary dispatch to force this
//     path deterministically;
//   * identical chunks already in flight are deduplicated (single-flight):
//     a second identical sweep attaches to the running chunk's result
//     instead of re-dispatching it;
//   * with a --sweep-journal, every completed point is appended to the
//     coordinator's own journal as chunk results land, so a coordinator
//     SIGKILL + restart re-dispatches only the unfinished points and the
//     resumed dump is byte-identical.
//
// Screened sweeps (sweep.screen) are rejected with 400: the retained
// Pareto band is a property of the whole point set and does not shard.
// /v1/simulate is always served locally by a coordinator.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "serve/api.h"
#include "serve/workerpool.h"

namespace sqz::core {
class SweepJournal;
}

namespace sqz::serve {

struct CoordinatorOptions {
  /// The static fleet, as "host:port" strings (sqzserved --workers).
  /// These members never expire. May be empty when accept_registrations is
  /// set (a coordinator that starts with zero workers and waits for --join
  /// registrations).
  std::vector<std::string> workers;

  /// Serve POST /v1/workers/register|deregister — dynamic membership.
  /// Coordinator mode is active when this is set or `workers` is nonempty.
  bool accept_registrations = false;

  /// Lease TTL granted to a registration that does not name one.
  std::int64_t default_lease_ms = 5000;

  ProbePolicy probe;  ///< Health-check cadence and ejection thresholds.

  int chunk_points = 4;     ///< Design points per dispatched chunk.
  int straggler_ms = 2000;  ///< In-flight age that triggers work stealing.

  /// Per-dispatch HTTP budget: attempts against one worker (with the
  /// httpclient backoff/jitter discipline) and the response deadline.
  int dispatch_attempts = 2;
  int dispatch_base_ms = 50;
  int dispatch_timeout_ms = 60000;

  /// Re-dispatches of one chunk to other workers after its dispatch
  /// failed; exhaustion turns the chunk's points into "dispatch"
  /// PointErrors.
  int max_requeues = 3;
};

class Coordinator {
 public:
  /// Parses and validates the worker list (throws std::invalid_argument on
  /// a malformed endpoint). `metrics` may be null. `journal` (may be null)
  /// receives sqzm1 membership events — register/deregister/expire — so a
  /// standby coordinator can rebuild the fleet on takeover.
  Coordinator(const CoordinatorOptions& options, Metrics* metrics,
              core::SweepJournal* journal = nullptr);
  ~Coordinator();  ///< Calls stop().

  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  void start();  ///< Start the worker-health prober.
  void stop();

  WorkerPool& pool() { return pool_; }
  const CoordinatorOptions& options() const { return options_; }

  /// Handle one POST /v1/workers/register: admit (or renew) the worker's
  /// lease, journal the membership change (renewals are not journaled —
  /// they would bloat the journal at heartbeat cadence and carry no ring
  /// change), and count coord_registers. `lease_ms` <= 0 requests the
  /// default TTL. Throws ApiError(503) under the "coord.register" fault
  /// point — the wire a joining worker's jittered retry is drilled on.
  WorkerPool::Registration register_worker(const HostPort& addr,
                                           std::int64_t lease_ms);

  /// Handle one POST /v1/workers/deregister (graceful drain). Returns
  /// false when the worker was not an alive member.
  bool deregister_worker(const HostPort& addr);

  /// Rebuild the fleet from journaled sqzm1 events (standby takeover):
  /// replays register/deregister/expire in append order, granting every
  /// surviving member a fresh lease stamped now — a worker that is truly
  /// gone simply fails to renew and expires a lease window later. Call
  /// before start().
  void replay_membership(
      const std::vector<std::pair<std::string, std::string>>& events);

  /// Journal a takeover event and count coord_takeovers (standby
  /// promotion, serve/server.h).
  void record_takeover(const std::string& standby_addr);

  /// Shard, dispatch, and merge one sweep. Blocking; safe to call from
  /// multiple connection handlers concurrently (identical in-flight chunks
  /// are deduplicated across calls). Journals completed points to
  /// `journal` (may be null) as chunks land. Throws ApiError(400) for
  /// screened sweeps.
  std::string run_sweep(const SweepRequest& req, core::SweepJournal* journal,
                        SweepRunStats* stats);

  /// One chunk's in-flight result record — the single-flight unit. Defined
  /// in coordinator.cpp; public so the dispatch machinery can name it.
  struct Flight;

 private:
  /// The single-flight table: chunk request body -> in-flight result.
  std::shared_ptr<Flight> attach_flight(const std::string& chunk_body,
                                        std::size_t chunk_size, bool& owner);
  void finish_flight(const std::string& chunk_body,
                     const std::shared_ptr<Flight>& flight);

  /// Append one sqzm1 event; journal errors are logged, not fatal — a
  /// missed event only costs the standby one lease window (the worker
  /// re-registers via heartbeat).
  void journal_membership(const std::string& addr, const char* event,
                          std::int64_t lease_ms, std::uint64_t epoch);

  CoordinatorOptions options_;
  Metrics* metrics_;
  core::SweepJournal* journal_;
  WorkerPool pool_;

  std::mutex flights_mu_;
  std::unordered_map<std::string, std::shared_ptr<Flight>> flights_;
};

}  // namespace sqz::serve
