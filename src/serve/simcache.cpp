#include "serve/simcache.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace sqz::serve {

namespace fs = std::filesystem;

std::uint64_t SimCache::fnv1a(std::string_view bytes) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ull;  // FNV offset basis
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;  // FNV prime
  }
  return h;
}

SimCache::SimCache(std::size_t max_entries, const std::string& disk_dir)
    : max_entries_(max_entries < 1 ? 1 : max_entries), disk_dir_(disk_dir) {
  if (!disk_dir_.empty()) {
    std::error_code ec;
    fs::create_directories(disk_dir_, ec);
    if (ec || !fs::is_directory(disk_dir_))
      throw std::runtime_error("simcache: cannot create cache dir '" +
                               disk_dir_ + "'");
  }
}

std::string SimCache::disk_path(std::uint64_t hash) const {
  char name[32];
  std::snprintf(name, sizeof(name), "%016llx.sqz",
                static_cast<unsigned long long>(hash));
  return disk_dir_ + "/" + name;
}

std::optional<std::string> SimCache::get(const std::string& canonical_key) {
  const std::uint64_t hash = fnv1a(canonical_key);
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = index_.find(hash);
    if (it != index_.end() && it->second->key == canonical_key) {
      lru_.splice(lru_.begin(), lru_, it->second);  // touch
      ++stats_.hits;
      return it->second->value;
    }
  }
  if (!disk_dir_.empty()) {
    if (auto value = disk_get(hash, canonical_key)) {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.hits;
      ++stats_.disk_hits;
      insert_locked(hash, canonical_key, *value);  // promote to memory
      return value;
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.misses;
  return std::nullopt;
}

void SimCache::put(const std::string& canonical_key, const std::string& value) {
  const std::uint64_t hash = fnv1a(canonical_key);
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.insertions;
    insert_locked(hash, canonical_key, value);
  }
  if (!disk_dir_.empty()) disk_put(hash, canonical_key, value);
}

void SimCache::insert_locked(std::uint64_t hash, const std::string& key,
                             const std::string& value) {
  const auto it = index_.find(hash);
  if (it != index_.end()) {
    // Same hash: refresh (same key) or replace (collision — rarer than a
    // cosmic ray; last writer wins, the key guard keeps lookups correct).
    it->second->key = key;
    it->second->value = value;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Entry{hash, key, value});
  index_[hash] = lru_.begin();
  while (lru_.size() > max_entries_) {
    index_.erase(lru_.back().hash);
    lru_.pop_back();
    ++stats_.evictions;
  }
  stats_.entries = lru_.size();
}

// Disk format: "<key-length>\n<key><value>". The length header (not a
// separator) keeps arbitrary key bytes unambiguous.
void SimCache::disk_put(std::uint64_t hash, const std::string& canonical_key,
                        const std::string& value) {
  const std::string path = disk_path(hash);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return;  // disk tier is best-effort; memory tier still serves
    out << canonical_key.size() << "\n" << canonical_key << value;
    if (!out.good()) {
      out.close();
      std::remove(tmp.c_str());
      return;
    }
  }
  std::rename(tmp.c_str(), path.c_str());  // atomic publish on POSIX
}

std::optional<std::string> SimCache::disk_get(
    std::uint64_t hash, const std::string& canonical_key) {
  std::ifstream in(disk_path(hash), std::ios::binary);
  if (!in) return std::nullopt;
  std::string header;
  if (!std::getline(in, header)) return std::nullopt;
  std::size_t key_len = 0;
  try {
    key_len = static_cast<std::size_t>(std::stoull(header));
  } catch (...) {
    return std::nullopt;
  }
  std::string key(key_len, '\0');
  if (!in.read(key.data(), static_cast<std::streamsize>(key_len)))
    return std::nullopt;
  if (key != canonical_key) return std::nullopt;  // hash collision on disk
  std::ostringstream value;
  value << in.rdbuf();
  return value.str();
}

SimCache::Stats SimCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s = stats_;
  s.entries = lru_.size();
  return s;
}

}  // namespace sqz::serve
