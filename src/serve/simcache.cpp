#include "serve/simcache.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/faultinject.h"
#include "util/hash.h"
#include "util/logging.h"

namespace sqz::serve {

namespace fs = std::filesystem;

namespace {

// Disk entry layout: one header line, then the raw payload.
//   "sqzc1 <key-bytes> <value-bytes> <fnv1a-of-payload, 16 hex>\n<key><value>"
// The lengths make arbitrary key/value bytes unambiguous; the checksum is
// computed over the payload (key then value), so a flipped bit, a truncated
// tail, or a stale pre-checksum file all fail verification the same way.
constexpr char kMagic[] = "sqzc1";

std::string render_header(std::size_t key_len, std::size_t value_len,
                          std::uint64_t checksum) {
  char header[96];
  std::snprintf(header, sizeof(header), "%s %zu %zu %016llx\n", kMagic,
                key_len, value_len,
                static_cast<unsigned long long>(checksum));
  return header;
}

}  // namespace

std::uint64_t SimCache::fnv1a(std::string_view bytes) noexcept {
  return util::fnv1a64(bytes);
}

SimCache::SimCache(std::size_t max_entries, const std::string& disk_dir)
    : max_entries_(max_entries < 1 ? 1 : max_entries), disk_dir_(disk_dir) {
  if (!disk_dir_.empty()) {
    std::error_code ec;
    fs::create_directories(disk_dir_, ec);
    if (ec || !fs::is_directory(disk_dir_))
      throw std::runtime_error("simcache: cannot create cache dir '" +
                               disk_dir_ + "'");
    scan_disk_tier();
  }
}

// Startup sweep for leftovers of a killed process: half-written `*.tmp`
// files are deleted (their rename never happened, so no reader can see
// them), zero-length published entries are quarantined. Anything the sweep
// cannot stat is skipped — the lazy checksum on read is the real gate.
void SimCache::scan_disk_tier() {
  std::error_code ec;
  fs::directory_iterator it(disk_dir_, ec), end;
  if (ec) {
    SQZ_LOG(Warn) << "simcache: cannot scan cache dir '" << disk_dir_
                  << "': " << ec.message();
    return;
  }
  for (; it != end; it.increment(ec)) {
    if (ec) break;
    const fs::path path = it->path();
    std::error_code file_ec;
    if (!fs::is_regular_file(path, file_ec) || file_ec) continue;
    if (path.extension() == ".tmp") {
      fs::remove(path, file_ec);
      continue;
    }
    if (path.extension() != ".sqz") continue;
    const std::uintmax_t size = fs::file_size(path, file_ec);
    if (file_ec) continue;  // unreadable: leave it to the lazy read path
    if (size == 0) quarantine(path.string(), "zero-length entry");
  }
}

std::string SimCache::disk_path(std::uint64_t hash) const {
  char name[32];
  std::snprintf(name, sizeof(name), "%016llx.sqz",
                static_cast<unsigned long long>(hash));
  return disk_dir_ + "/" + name;
}

void SimCache::quarantine(const std::string& path, const std::string& why) {
  const std::string bad = path + ".bad";
  if (std::rename(path.c_str(), bad.c_str()) != 0) {
    std::remove(path.c_str());  // rename failed: at least stop re-reading it
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.disk_quarantined;
  }
  SQZ_LOG(Warn) << "simcache: quarantined corrupt entry " << path << " ("
                << why << ")";
}

void SimCache::note_disk_error(const std::string& what) {
  bool demote = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.disk_errors;
    if (++disk_failure_streak_ >= kDiskFailureLimit &&
        !disk_demoted_.load(std::memory_order_relaxed)) {
      demote = true;
    }
  }
  if (demote) {
    disk_demoted_.store(true, std::memory_order_relaxed);
    SQZ_LOG(Warn) << "simcache: " << kDiskFailureLimit
                  << " consecutive disk failures (last: " << what
                  << "); demoting to memory-only cache";
  } else {
    SQZ_LOG(Warn) << "simcache: disk tier " << what;
  }
}

void SimCache::note_disk_ok() {
  std::lock_guard<std::mutex> lock(mu_);
  disk_failure_streak_ = 0;
}

std::optional<std::string> SimCache::get(const std::string& canonical_key) {
  const std::uint64_t hash = fnv1a(canonical_key);
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = index_.find(hash);
    if (it != index_.end() && it->second->key == canonical_key) {
      lru_.splice(lru_.begin(), lru_, it->second);  // touch
      ++stats_.hits;
      return it->second->value;
    }
  }
  if (disk_enabled()) {
    if (auto value = disk_get(hash, canonical_key)) {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.hits;
      ++stats_.disk_hits;
      insert_locked(hash, canonical_key, *value);  // promote to memory
      return value;
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.misses;
  return std::nullopt;
}

void SimCache::put(const std::string& canonical_key, const std::string& value) {
  const std::uint64_t hash = fnv1a(canonical_key);
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.insertions;
    insert_locked(hash, canonical_key, value);
  }
  if (disk_enabled()) disk_put(hash, canonical_key, value);
}

void SimCache::insert_locked(std::uint64_t hash, const std::string& key,
                             const std::string& value) {
  const auto it = index_.find(hash);
  if (it != index_.end()) {
    // Same hash: refresh (same key) or replace (collision — rarer than a
    // cosmic ray; last writer wins, the key guard keeps lookups correct).
    it->second->key = key;
    it->second->value = value;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Entry{hash, key, value});
  index_[hash] = lru_.begin();
  while (lru_.size() > max_entries_) {
    index_.erase(lru_.back().hash);
    lru_.pop_back();
    ++stats_.evictions;
  }
  stats_.entries = lru_.size();
}

void SimCache::disk_put(std::uint64_t hash, const std::string& canonical_key,
                        const std::string& value) {
  const std::string path = disk_path(hash);
  const std::string tmp = path + ".tmp";

  std::string record = render_header(canonical_key.size(), value.size(),
                                     fnv1a(canonical_key + value));
  record += canonical_key;
  record += value;

  // "simcache.write" fault point: Errno models a full/failing disk (the
  // write never lands), ShortIo models a crash after a partial write — the
  // truncated record is published so the read path's checksum must catch it.
  bool truncate_record = false;
  if (util::fault::enabled()) {
    const util::fault::Action a = util::fault::at("simcache.write");
    if (a.kind == util::fault::Kind::Errno) {
      errno = a.err;
      note_disk_error(std::string("write failed: ") + std::strerror(errno));
      return;
    }
    if (a.kind == util::fault::Kind::ShortIo) {
      record.resize(std::min(record.size(), a.bytes));
      truncate_record = true;
    }
  }

  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      note_disk_error("cannot open " + tmp);
      return;
    }
    out.write(record.data(), static_cast<std::streamsize>(record.size()));
    if (!out.good()) {
      out.close();
      std::remove(tmp.c_str());
      note_disk_error("write failed for " + tmp);
      return;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {  // atomic publish
    std::remove(tmp.c_str());
    note_disk_error("rename failed for " + tmp);
    return;
  }
  if (!truncate_record) note_disk_ok();
}

std::optional<std::string> SimCache::disk_get(
    std::uint64_t hash, const std::string& canonical_key) {
  const std::string path = disk_path(hash);
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;  // absent: an ordinary miss

  std::string raw;
  {
    std::ostringstream bytes;
    bytes << in.rdbuf();
    if (in.bad()) {
      note_disk_error("read failed for " + path);
      return std::nullopt;
    }
    raw = bytes.str();
  }

  // "simcache.read" fault point: Errno models a failing device, ShortIo
  // models a torn read — the verification below must reject the remainder.
  if (util::fault::enabled()) {
    const util::fault::Action a = util::fault::at("simcache.read");
    if (a.kind == util::fault::Kind::Errno) {
      errno = a.err;
      note_disk_error(std::string("read failed: ") + std::strerror(errno));
      return std::nullopt;
    }
    if (a.kind == util::fault::Kind::ShortIo)
      raw.resize(std::min(raw.size(), a.bytes));
  }

  // Verify the header and checksum; any violation quarantines the file.
  const std::size_t nl = raw.find('\n');
  unsigned long long key_len = 0, value_len = 0, stored_sum = 0;
  char magic[8] = {0};
  if (nl == std::string::npos || nl > 96 ||
      std::sscanf(raw.c_str(), "%7s %llu %llu %16llx", magic, &key_len,
                  &value_len, &stored_sum) != 4 ||
      std::string(magic) != kMagic) {
    quarantine(path, "bad header");
    return std::nullopt;
  }
  const std::string_view payload(raw.data() + nl + 1, raw.size() - nl - 1);
  if (payload.size() != key_len + value_len) {
    quarantine(path, "truncated payload");
    return std::nullopt;
  }
  if (fnv1a(payload) != stored_sum) {
    quarantine(path, "checksum mismatch");
    return std::nullopt;
  }
  note_disk_ok();
  if (payload.substr(0, key_len) != canonical_key)
    return std::nullopt;  // hash collision on disk: miss, never a wrong value
  return std::string(payload.substr(key_len, value_len));
}

SimCache::Stats SimCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s = stats_;
  s.entries = lru_.size();
  s.disk_demoted = disk_demoted_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace sqz::serve
