#include "serve/plancache.h"

#include <cstdio>
#include <filesystem>
#include <stdexcept>

#include "util/hash.h"
#include "util/logging.h"

namespace sqz::serve {

namespace fs = std::filesystem;

PlanCache::PlanCache(std::size_t max_entries, const std::string& disk_dir)
    : max_entries_(max_entries < 1 ? 1 : max_entries), disk_dir_(disk_dir) {
  if (!disk_dir_.empty()) {
    std::error_code ec;
    fs::create_directories(disk_dir_, ec);
    if (ec || !fs::is_directory(disk_dir_))
      throw std::runtime_error("plancache: cannot create plan dir '" +
                               disk_dir_ + "'");
    scan_disk_tier();
  }
}

// Startup sweep, mirroring SimCache: `*.tmp` leftovers of a killed writer
// are deleted (never published, so no reader can see them), zero-length
// published plans are quarantined. Everything else is left to load_plan's
// full verification on first read.
void PlanCache::scan_disk_tier() {
  std::error_code ec;
  fs::directory_iterator it(disk_dir_, ec), end;
  if (ec) {
    SQZ_LOG(Warn) << "plancache: cannot scan plan dir '" << disk_dir_
                  << "': " << ec.message();
    return;
  }
  for (; it != end; it.increment(ec)) {
    if (ec) break;
    const fs::path path = it->path();
    std::error_code file_ec;
    if (!fs::is_regular_file(path, file_ec) || file_ec) continue;
    if (path.extension() == ".tmp") {
      fs::remove(path, file_ec);
      continue;
    }
    if (path.extension() != ".plan") continue;
    const std::uintmax_t size = fs::file_size(path, file_ec);
    if (file_ec) continue;
    if (size == 0) quarantine(path.string(), "zero-length plan");
  }
}

std::string PlanCache::disk_path(std::uint64_t hash) const {
  char name[32];
  std::snprintf(name, sizeof(name), "%016llx.plan",
                static_cast<unsigned long long>(hash));
  return disk_dir_ + "/" + name;
}

void PlanCache::quarantine(const std::string& path, const std::string& why) {
  const std::string bad = path + ".bad";
  if (std::rename(path.c_str(), bad.c_str()) != 0) {
    std::remove(path.c_str());  // rename failed: at least stop re-reading it
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.corrupt;
  }
  SQZ_LOG(Warn) << "plancache: quarantined corrupt plan " << path << " ("
                << why << ")";
}

bool PlanCache::matches(const sched::PlanArtifact& artifact,
                        std::uint64_t model_hash,
                        const sim::AcceleratorConfig& config,
                        const sched::SimulationOptions& options) const {
  return artifact.model_hash == model_hash &&
         artifact.program.config == config &&
         sched::plan_options_equal(artifact.options, options);
}

std::optional<sched::PlanArtifact> PlanCache::get(
    const std::string& canonical_key, std::uint64_t model_hash,
    const sim::AcceleratorConfig& config,
    const sched::SimulationOptions& options) {
  const std::uint64_t hash = util::fnv1a64(canonical_key);
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = index_.find(hash);
    if (it != index_.end() && it->second->key == canonical_key &&
        matches(it->second->artifact, model_hash, config, options)) {
      lru_.splice(lru_.begin(), lru_, it->second);  // touch
      ++stats_.hits;
      return it->second->artifact;
    }
  }
  if (!disk_dir_.empty()) {
    if (auto artifact = disk_get(hash, model_hash, config, options)) {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.hits;
      ++stats_.disk_hits;
      insert_locked(hash, canonical_key, *artifact);  // promote to memory
      return artifact;
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.misses;
  return std::nullopt;
}

std::optional<sched::PlanArtifact> PlanCache::disk_get(
    std::uint64_t hash, std::uint64_t model_hash,
    const sim::AcceleratorConfig& config,
    const sched::SimulationOptions& options) {
  const std::string path = disk_path(hash);
  {
    std::error_code ec;
    if (!fs::exists(path, ec) || ec) return std::nullopt;  // ordinary miss
  }
  sched::PlanArtifact artifact;
  try {
    artifact = sched::load_plan(path);  // carries the "plan.read" fault point
  } catch (const sched::PlanError& e) {
    if (e.code() == sched::PlanErrorCode::Io) {
      // The device failed, not the bytes: keep the file, count the error.
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.disk_errors;
      SQZ_LOG(Warn) << "plancache: " << e.what();
      return std::nullopt;
    }
    quarantine(path, e.what());
    return std::nullopt;
  }
  if (!matches(artifact, model_hash, config, options))
    return std::nullopt;  // collision or hand-placed file: miss, never wrong
  return artifact;
}

void PlanCache::put(const std::string& canonical_key,
                    const sched::PlanArtifact& artifact) {
  const std::uint64_t hash = util::fnv1a64(canonical_key);
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.insertions;
    insert_locked(hash, canonical_key, artifact);
  }
  if (!disk_dir_.empty()) {
    try {
      sched::save_plan(disk_path(hash), artifact);  // "plan.write" site
    } catch (const sched::PlanError& e) {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.disk_errors;
      SQZ_LOG(Warn) << "plancache: " << e.what();
    }
  }
}

void PlanCache::insert_locked(std::uint64_t hash, const std::string& key,
                              const sched::PlanArtifact& artifact) {
  const auto it = index_.find(hash);
  if (it != index_.end()) {
    it->second->key = key;
    it->second->artifact = artifact;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Entry{hash, key, artifact});
  index_[hash] = lru_.begin();
  while (lru_.size() > max_entries_) {
    index_.erase(lru_.back().hash);
    lru_.pop_back();
    ++stats_.evictions;
  }
  stats_.entries = lru_.size();
}

PlanCache::Stats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s = stats_;
  s.entries = lru_.size();
  return s;
}

}  // namespace sqz::serve
