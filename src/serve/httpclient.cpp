#include "serve/httpclient.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "util/rng.h"
#include "util/threadpool.h"

namespace sqz::serve {

namespace {

struct Fd {
  int fd = -1;
  ~Fd() {
    if (fd >= 0) ::close(fd);
  }
};

[[noreturn]] void throw_fetch(FetchError::Kind kind, const std::string& what) {
  throw FetchError(kind, what + ": " + std::strerror(errno));
}

}  // namespace

HostPort parse_host_port(const std::string& spec, const std::string& flag) {
  const std::size_t colon = spec.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 == spec.size())
    throw std::invalid_argument(flag + " expects host:port, got '" + spec +
                                "'");
  HostPort out;
  out.host = spec.substr(0, colon);
  out.port =
      util::ThreadPool::parse_jobs(spec.substr(colon + 1), flag + " port");
  if (out.port > 65535)
    throw std::invalid_argument(flag + " port must be in [1, 65535]");
  return out;
}

HttpResponse http_fetch(const std::string& host, int port, HttpRequest req,
                        int timeout_ms) {
  if (port <= 0 || port > 65535)
    throw FetchError(FetchError::Kind::Connect,
                     "http_fetch: bad port " + std::to_string(port));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  const std::string ip = host == "localhost" ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, ip.c_str(), &addr.sin_addr) != 1)
    throw FetchError(FetchError::Kind::Connect,
                     "http_fetch: cannot resolve '" + host +
                         "' (use a numeric IPv4 address or localhost)");

  Fd sock;
  sock.fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (sock.fd < 0) throw_fetch(FetchError::Kind::Connect, "http_fetch: socket");
  if (::connect(sock.fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0)
    throw_fetch(FetchError::Kind::Connect,
                "http_fetch: connect to " + host + ":" + std::to_string(port));

  if (!req.header("Host"))
    req.headers.emplace_back("Host", host + ":" + std::to_string(port));
  if (!req.header("Connection")) req.headers.emplace_back("Connection", "close");

  const std::string wire = req.serialize();
  std::size_t sent = 0;
  while (sent < wire.size()) {
    const ssize_t n = ::send(sock.fd, wire.data() + sent, wire.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_fetch(FetchError::Kind::Io, "http_fetch: send");
    }
    sent += static_cast<std::size_t>(n);
  }

  std::string buffer;
  char chunk[16384];
  for (;;) {
    pollfd p{sock.fd, POLLIN, 0};
    const int pr = ::poll(&p, 1, timeout_ms);
    if (pr < 0) throw_fetch(FetchError::Kind::Io, "http_fetch: poll");
    if (pr == 0)
      throw FetchError(FetchError::Kind::Timeout,
                       "http_fetch: no response within " +
                           std::to_string(timeout_ms) + " ms");
    const ssize_t n = ::recv(sock.fd, chunk, sizeof(chunk), 0);
    if (n < 0) throw_fetch(FetchError::Kind::Io, "http_fetch: recv");
    if (n == 0)
      throw FetchError(FetchError::Kind::Io,
                       "http_fetch: connection closed early");
    buffer.append(chunk, static_cast<std::size_t>(n));

    HttpResponse resp;
    std::size_t consumed = 0;
    std::string err;
    switch (parse_http_response(buffer, resp, consumed, &err)) {
      case ParseStatus::Ok: return resp;
      case ParseStatus::NeedMore: break;
      case ParseStatus::Error:
      case ParseStatus::TooLarge:
        throw FetchError(FetchError::Kind::Parse,
                         "http_fetch: bad response: " + err);
    }
  }
}

HttpResponse http_fetch_retry(const std::string& host, int port,
                              const HttpRequest& req, int timeout_ms,
                              const RetryPolicy& policy, int* attempts_out) {
  const int max_attempts = std::max(1, policy.max_attempts);
  const int base_ms = std::max(1, policy.base_ms);
  const int cap_ms = std::max(base_ms, policy.cap_ms);
  util::Rng rng(policy.seed);
  int prev_sleep_ms = base_ms;

  // Decorrelated jitter (Brooker): each sleep is uniform over
  // [base, 3 * previous sleep], clamped to [base, cap]. Spreads retry storms
  // without the lockstep thundering herd of plain exponential backoff.
  const auto next_sleep = [&](int at_least_ms) {
    const std::int64_t hi =
        std::min<std::int64_t>(cap_ms, 3 * std::int64_t{prev_sleep_ms});
    int sleep_ms = static_cast<int>(rng.next_in(base_ms, hi));
    sleep_ms = std::max(sleep_ms, std::min(at_least_ms, cap_ms));
    prev_sleep_ms = sleep_ms;
    return sleep_ms;
  };

  for (int attempt = 1;; ++attempt) {
    if (attempts_out) *attempts_out = attempt;
    int retry_after_ms = 0;
    try {
      HttpResponse resp = http_fetch(host, port, req, timeout_ms);
      if (resp.status != 503 || attempt >= max_attempts) return resp;
      // Shed by a saturated server: honor Retry-After (seconds) as a floor,
      // still capped so tests and tight deadlines stay fast.
      if (const std::string* ra = resp.header("Retry-After")) {
        errno = 0;
        char* end = nullptr;
        const long sec = std::strtol(ra->c_str(), &end, 10);
        if (end != ra->c_str() && *end == '\0' && errno == 0 && sec > 0)
          retry_after_ms = static_cast<int>(
              std::min<long>(sec * 1000L, cap_ms));
      }
    } catch (const FetchError& e) {
      if (!e.retryable() || attempt >= max_attempts) throw;
    }
    std::this_thread::sleep_for(
        std::chrono::milliseconds(next_sleep(retry_after_ms)));
  }
}

}  // namespace sqz::serve
