// Request counters and latency aggregates for the simulation service,
// rendered as Prometheus text exposition on GET /metrics.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>

#include "serve/plancache.h"
#include "serve/simcache.h"

namespace sqz::serve {

class Metrics {
 public:
  struct Snapshot {
    std::uint64_t requests_total = 0;   ///< Responses sent, any status.
    std::uint64_t responses_2xx = 0;
    std::uint64_t responses_4xx = 0;
    std::uint64_t responses_5xx = 0;
    std::uint64_t in_flight = 0;        ///< Accepted, response not yet sent.
    double latency_min_s = 0.0;         ///< 0 until the first request.
    double latency_mean_s = 0.0;
    double latency_max_s = 0.0;
    // Fault-tolerance counters (ARCHITECTURE.md "Fault tolerance").
    std::uint64_t shed_total = 0;        ///< 503s from the connection cap.
    std::uint64_t timeouts_total = 0;    ///< Request deadlines that expired.
    std::uint64_t oversize_total = 0;    ///< 413s (body or headers over cap).
    std::uint64_t idle_closed_total = 0; ///< Keep-alive conns reaped idle.
    std::uint64_t accept_backoff_total = 0;  ///< EMFILE/ENFILE accept stalls.
    // Sweep counters (ARCHITECTURE.md "Crash safety & resumable sweeps").
    std::uint64_t sweep_points_total = 0;        ///< Points evaluated OK.
    std::uint64_t sweep_point_errors_total = 0;  ///< Structured PointErrors.
    std::uint64_t sweeps_partial_total = 0;  ///< Responses with >=1 error.
    std::uint64_t sweep_resumed_total = 0;   ///< Points served from journal.
    // Two-phase screened sweeps (ARCHITECTURE.md "Two-phase sweeps").
    std::uint64_t screen_points = 0;    ///< Points scored analytically.
    std::uint64_t screen_kept = 0;      ///< Points re-simulated cycle-exactly.
    double screen_error_max_pct = 0.0;  ///< Worst estimator error observed.
    // Coordinator mode (ARCHITECTURE.md "Distributed sweeps"). All zero on a
    // stock worker.
    std::uint64_t coord_workers_up = 0;          ///< Usable workers (gauge).
    std::uint64_t coord_points_dispatched = 0;   ///< Points posted to workers.
    std::uint64_t coord_points_requeued = 0;     ///< Points re-dispatched.
    std::uint64_t coord_steals = 0;              ///< Straggler re-dispatches.
    std::uint64_t coord_singleflight_hits = 0;   ///< Chunks deduplicated.
    std::uint64_t coord_worker_ejections = 0;    ///< Workers newly ejected.
    std::uint64_t coord_retries = 0;             ///< Extra same-worker attempts.
    std::uint64_t coord_chunks_inflight = 0;     ///< Chunks on the wire (gauge).
    // Dynamic membership & coordinator HA (ARCHITECTURE.md "Dynamic
    // membership & coordinator HA").
    std::uint64_t coord_registers = 0;           ///< Registrations + renewals.
    std::uint64_t coord_lease_expirations = 0;   ///< Leases that lapsed.
    std::uint64_t coord_epoch = 0;               ///< Ring version (gauge).
    std::uint64_t coord_takeovers = 0;           ///< Standby promotions.
    std::uint64_t worker_joined = 0;             ///< --join registrations won.
    std::uint64_t worker_drains = 0;             ///< Graceful SIGTERM drains.
  };

  void request_started();
  void request_finished();

  /// Record one served request: wall-clock handle time and response status.
  void record_request(double seconds, int status);

  /// Record one executed sweep's point/error/resume counts, plus the
  /// two-phase screening stats (all zero for unscreened sweeps).
  void record_sweep(std::uint64_t points, std::uint64_t point_errors,
                    std::uint64_t resumed, std::uint64_t screen_points = 0,
                    std::uint64_t screen_kept = 0,
                    double screen_error_max_pct = 0.0);

  void record_shed();
  void record_timeout();
  void record_oversize();
  void record_idle_closed();
  void record_accept_backoff();

  // Coordinator-mode feeds (serve/workerpool.h, serve/coordinator.h).
  void set_coord_workers_up(std::uint64_t up);
  void record_coord_dispatch(std::uint64_t points);  ///< One chunk posted.
  void record_coord_requeue(std::uint64_t points);   ///< One chunk requeued.
  void record_coord_steal();
  void record_coord_singleflight_hit();
  void record_coord_ejection();
  void record_coord_retries(std::uint64_t retries);
  void coord_chunk_started();
  void coord_chunk_finished();
  // Dynamic membership feeds (serve/workerpool.h, serve/joiner.h,
  // serve/server.h standby promotion).
  void record_coord_register();
  void record_coord_lease_expiration();
  void set_coord_epoch(std::uint64_t epoch);
  void record_coord_takeover();
  void record_worker_joined();
  void record_worker_drain();

  Snapshot snapshot() const;

  /// The /metrics body: request/latency gauges plus the result cache's and
  /// plan cache's counters (`plans` defaults to all-zero when the plan
  /// cache is disabled).
  std::string render(const SimCache::Stats& cache,
                     const PlanCache::Stats& plans = {}) const;

 private:
  mutable std::mutex mu_;
  Snapshot s_;
  double latency_sum_s_ = 0.0;
};

}  // namespace sqz::serve
