// Request counters and latency aggregates for the simulation service,
// rendered as Prometheus text exposition on GET /metrics.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>

#include "serve/simcache.h"

namespace sqz::serve {

class Metrics {
 public:
  struct Snapshot {
    std::uint64_t requests_total = 0;   ///< Responses sent, any status.
    std::uint64_t responses_2xx = 0;
    std::uint64_t responses_4xx = 0;
    std::uint64_t responses_5xx = 0;
    std::uint64_t in_flight = 0;        ///< Accepted, response not yet sent.
    double latency_min_s = 0.0;         ///< 0 until the first request.
    double latency_mean_s = 0.0;
    double latency_max_s = 0.0;
  };

  void request_started();
  void request_finished();

  /// Record one served request: wall-clock handle time and response status.
  void record_request(double seconds, int status);

  Snapshot snapshot() const;

  /// The /metrics body: request/latency gauges plus the cache's counters.
  std::string render(const SimCache::Stats& cache) const;

 private:
  mutable std::mutex mu_;
  Snapshot s_;
  double latency_sum_s_ = 0.0;
};

}  // namespace sqz::serve
