// The simulation service API: JSON request bodies -> core simulation ->
// the exact JSON documents the CLI emits (`sqzsim --json` for
// POST /v1/simulate, `sqzsim --dump-rf-sweep`-style DSE dumps for
// POST /v1/sweep). Responses are byte-identical to local runs by
// construction: both paths call the same core/report and core/dse writers.
//
// Request schema (POST /v1/simulate):
//   {
//     "model":      "sqnxt23",          // zoo name (core/cli.h spelling), or
//     "model_text": "model ...",        // inline nn/serialize.h description
//     "config":     {"rf_entries": 8},  // knobs over the Squeezelerator base
//     "config_ini": "[accelerator]...", //   ...or a full core/config_io INI
//     "options": {"objective": "cycles", "timeline": false,
//                 "double_buffered": true, "tile_search": false,
//                 "fuse": false}
//   }
// Every field is optional except one of model/model_text. POST /v1/sweep
// adds {"sweep": {"knob": "rf_entries", "values": [8, 16]}}; knobs:
// rf_entries, array_n, sparsity, dram_bytes_per_cycle. The sweep object
// also accepts "screen": true and "screen_keep": 0.25 for two-phase
// analytically-screened sweeps (core/dse.h, docs/ESTIMATOR.md).
//
// Cache-key canonicalization: requests are reduced to a compact JSON string
// with a fixed field order in which the model is the *serialized model
// text* (so a zoo name and its inline equivalent collide), the config is
// the config_to_ini rendering (full field set, sorted keys), and options
// carry their defaults explicitly. The SimCache keys on the FNV-1a hash of
// that string. Unit energies are not part of the key (the API does not
// expose them). The sweep key additionally carries the verbatim model
// label, which is embedded in the response's "sweep" name.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "nn/model.h"
#include "sched/network_sim.h"
#include "sched/plan_io.h"
#include "serve/plancache.h"
#include "serve/simcache.h"
#include "sim/config.h"

namespace sqz::core {
class SweepJournal;
}

namespace sqz::serve {

/// Request-handling failure with the HTTP status it should map to.
class ApiError : public std::runtime_error {
 public:
  ApiError(int status, const std::string& message)
      : std::runtime_error(message), status_(status) {}
  int status() const noexcept { return status_; }

 private:
  int status_;
};

/// A validated /v1/simulate request.
struct SimulateRequest {
  nn::Model model;
  std::string model_label;  ///< Verbatim "model" field, or "custom".
  sim::AcceleratorConfig config;
  sched::SimulationOptions options;
};

/// A validated /v1/sweep request.
struct SweepRequest {
  SimulateRequest base;
  std::string knob;
  std::vector<double> values;
  /// Two-phase screening (core/dse.h SweepOptions): sweep.screen /
  /// sweep.screen_keep request members. The canonical key appends them only
  /// when screen is set, so unscreened keys — and the cached bodies behind
  /// them — are unchanged.
  bool screen = false;
  double screen_keep = 0.25;
};

/// A validated POST /v1/workers/register (or /deregister) body — dynamic
/// fleet membership (serve/workerpool.h):
///   {"host": "127.0.0.1", "port": 9000, "lease_ms": 5000}
/// `lease_ms` is register-only and optional (0 = the coordinator's default
/// TTL); deregister bodies carry host/port only.
struct WorkerRegistration {
  std::string host;
  int port = 0;
  std::int64_t lease_ms = 0;
};

/// Parse and validate request bodies. Throw ApiError(400) with a
/// client-readable message on any violation (bad JSON, unknown model,
/// unknown config key, invalid knob value, ...).
SimulateRequest parse_simulate_request(const std::string& body);
SweepRequest parse_sweep_request(const std::string& body);
WorkerRegistration parse_worker_registration(const std::string& body);

/// The canonical cache-key strings defined above.
std::string canonical_key(const SimulateRequest& req);
std::string canonical_key(const SweepRequest& req);

/// The labeled configurations a sweep request expands to — the same
/// core/dse.h builders the local engine runs, exposed so the coordinator
/// (serve/coordinator.h) shards exactly the point set a single node would
/// evaluate. Throws ApiError(400) on non-integral values for integer knobs.
std::vector<std::pair<std::string, sim::AcceleratorConfig>> sweep_configs(
    const SweepRequest& req);

/// Outcome counters for one executed sweep (journal/error visibility on
/// /metrics). All zero for cache hits and non-sweep requests.
struct SweepRunStats {
  std::size_t points = 0;        ///< Successful points in the response.
  std::size_t point_errors = 0;  ///< Structured PointErrors in the response.
  std::size_t resumed = 0;       ///< Points restored from the sweep journal.

  /// Two-phase screened sweeps: analytical phase-1 scores, retained band
  /// size, and worst phase-1 cycle error over the re-simulated band (feeds
  /// the screen_* /metrics counters). All zero for unscreened sweeps.
  std::size_t screen_points = 0;
  std::size_t screen_kept = 0;
  double screen_error_max_pct = 0.0;

  bool partial() const noexcept { return point_errors > 0; }
};

/// Stateless executors: run the simulation and render the response body.
/// run_simulate optionally hands back the compiled plan for the request
/// (`compiled_plan` non-null) — derived from the same simulation that
/// produced the response, so the serving cold path compiles without
/// simulating twice. run_simulate_with_plan replays a plan's scheduling
/// decisions instead of searching (sched::simulate_with_plan); by
/// determinism its response is byte-identical to run_simulate for the
/// request the plan was compiled from.
/// run_sweep fault-isolates each design point (core/dse.h
/// evaluate_designs_checked): a throwing point becomes a structured entry
/// in the response's "errors" array instead of failing the request. With a
/// `journal`, completed points are appended and already-journaled points
/// are served without re-simulating.
std::string run_simulate(const SimulateRequest& req,
                         sched::PlanArtifact* compiled_plan = nullptr);
std::string run_simulate_with_plan(const SimulateRequest& req,
                                   const sched::Program& program);
std::string run_sweep(const SweepRequest& req,
                      core::SweepJournal* journal = nullptr,
                      SweepRunStats* stats = nullptr);

class Coordinator;

/// The cached service: parse -> canonicalize -> cache lookup -> execute.
class SimService {
 public:
  struct Result {
    std::string body;
    bool cache_hit = false;
    bool plan_hit = false;  ///< Executed, but from a cached compiled plan.
    SweepRunStats sweep;  ///< Filled for executed (non-cache-hit) sweeps.
  };

  /// `cache` may be null to serve uncached; `journal` may be null to run
  /// sweeps without crash-safe journaling; `plans` may be null to compile
  /// every result-cache miss from scratch. A non-null `coordinator`
  /// (serve/coordinator.h) shards executed sweeps across its worker fleet
  /// instead of simulating locally; /v1/simulate always runs locally.
  explicit SimService(SimCache* cache, core::SweepJournal* journal = nullptr,
                      PlanCache* plans = nullptr,
                      Coordinator* coordinator = nullptr)
      : cache_(cache), journal_(journal), plans_(plans),
        coordinator_(coordinator) {}

  Result simulate(const std::string& request_body);
  Result sweep(const std::string& request_body);

 private:
  SimCache* cache_;
  core::SweepJournal* journal_;
  PlanCache* plans_;
  Coordinator* coordinator_;
};

}  // namespace sqz::serve
