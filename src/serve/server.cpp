#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <stdexcept>

#include "util/json.h"
#include "util/threadpool.h"

namespace sqz::serve {

namespace {

constexpr int kPollTickMs = 100;
constexpr int kIdleTimeoutTicks = 300;  // 30 s without bytes closes the conn

bool send_all(int fd, const std::string& bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        ::send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;  // peer went away; nothing useful to do
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

Server::Server(const ServerOptions& options)
    : options_(options),
      cache_(options.cache_entries, options.cache_dir),
      service_(&cache_) {}

Server::~Server() { stop(); }

void Server::start() {
  if (listen_fd_ >= 0) throw std::runtime_error("server already started");

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1)
    throw std::runtime_error("server: bad bind address '" + options_.host +
                             "' (numeric IPv4 required)");

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0)
    throw std::runtime_error(std::string("server: socket: ") +
                             std::strerror(errno));
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string why = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("server: cannot bind " + options_.host + ":" +
                             std::to_string(options_.port) + ": " + why);
  }
  if (::listen(listen_fd_, 128) != 0) {
    const std::string why = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("server: listen: " + why);
  }

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
  port_ = ntohs(bound.sin_port);

  stopping_.store(false);
  accepting_.store(true);
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void Server::stop() {
  if (listen_fd_ < 0 && !accept_thread_.joinable()) return;
  stopping_.store(true);
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  // Drain: every dispatched connection holds a slot until its loop exits.
  std::unique_lock<std::mutex> lock(mu_);
  drained_cv_.wait(lock, [this] { return active_connections_ == 0; });
  accepting_.store(false);
}

void Server::accept_loop() {
  while (!stopping_.load()) {
    pollfd p{listen_fd_, POLLIN, 0};
    const int pr = ::poll(&p, 1, kPollTickMs);
    if (pr <= 0) continue;  // timeout tick or EINTR: re-check stopping_
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++active_connections_;
    }
    util::ThreadPool::global().submit([this, fd] {
      handle_connection(fd);
      ::close(fd);
      {
        std::lock_guard<std::mutex> lock(mu_);
        --active_connections_;
      }
      drained_cv_.notify_all();
    });
  }
  accepting_.store(false);
}

void Server::handle_connection(int fd) {
  std::string buffer;
  char chunk[16384];
  int idle_ticks = 0;

  for (;;) {
    // Try to serve every complete request already buffered.
    for (;;) {
      HttpRequest request;
      std::size_t consumed = 0;
      std::string parse_error;
      const ParseStatus ps =
          parse_http_request(buffer, request, consumed, &parse_error);
      if (ps == ParseStatus::Error) {
        HttpResponse resp = make_response(
            400, "application/json",
            "{\"error\": \"" + util::json_escape(parse_error) + "\"}\n");
        resp.headers.emplace_back("Connection", "close");
        send_all(fd, resp.serialize());
        return;
      }
      if (ps == ParseStatus::NeedMore) break;
      buffer.erase(0, consumed);

      metrics_.request_started();
      const auto t0 = std::chrono::steady_clock::now();
      HttpResponse resp = route(request);
      const double seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      metrics_.record_request(seconds, resp.status);
      metrics_.request_finished();

      const bool close_after = request.wants_close() || stopping_.load();
      resp.headers.emplace_back("Connection",
                                close_after ? "close" : "keep-alive");
      if (!send_all(fd, resp.serialize()) || close_after) return;
      idle_ticks = 0;
    }

    // Wait for more bytes; shut idle connections on stop or timeout.
    pollfd p{fd, POLLIN, 0};
    const int pr = ::poll(&p, 1, kPollTickMs);
    if (pr < 0 && errno != EINTR) return;
    if (pr == 0) {
      if (stopping_.load() && buffer.empty()) return;  // idle at shutdown
      if (++idle_ticks > kIdleTimeoutTicks) return;
      continue;
    }
    if (pr > 0) {
      const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n <= 0) return;  // peer closed or error
      buffer.append(chunk, static_cast<std::size_t>(n));
      idle_ticks = 0;
    }
  }
}

HttpResponse Server::route(const HttpRequest& request) {
  const auto json_error = [](int status, const std::string& message) {
    HttpResponse r = make_response(
        status, "application/json",
        "{\"error\": \"" + util::json_escape(message) + "\"}\n");
    return r;
  };

  try {
    if (request.target == "/healthz") {
      if (request.method != "GET" && request.method != "HEAD")
        return json_error(405, "use GET " + request.target);
      return make_response(200, "text/plain", "ok\n");
    }
    if (request.target == "/metrics") {
      if (request.method != "GET")
        return json_error(405, "use GET /metrics");
      return make_response(200, "text/plain; version=0.0.4",
                           metrics_.render(cache_.stats()));
    }
    if (request.target == "/v1/simulate" || request.target == "/v1/sweep") {
      if (request.method != "POST")
        return json_error(405, "use POST " + request.target);
      const SimService::Result result = request.target == "/v1/simulate"
                                            ? service_.simulate(request.body)
                                            : service_.sweep(request.body);
      HttpResponse resp =
          make_response(200, "application/json", result.body);
      resp.headers.emplace_back("X-Sqz-Cache",
                                result.cache_hit ? "hit" : "miss");
      return resp;
    }
    return json_error(404, "no such endpoint: " + request.target);
  } catch (const ApiError& e) {
    return json_error(e.status(), e.what());
  } catch (const std::exception& e) {
    return json_error(500, e.what());
  }
}

}  // namespace sqz::serve
