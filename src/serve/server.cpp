#include "serve/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "util/faultinject.h"
#include "util/json.h"
#include "util/logging.h"
#include "util/threadpool.h"

namespace sqz::serve {

namespace {

using Clock = std::chrono::steady_clock;

constexpr int kPollTickMs = 100;
constexpr int kAcceptBackoffStartMs = 50;
constexpr int kAcceptBackoffCapMs = 800;

int ms_until(Clock::time_point deadline) {
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                        deadline - Clock::now())
                        .count();
  return left < 0 ? 0 : static_cast<int>(left);
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

// Send with a drain deadline. Connection fds are non-blocking, so a peer
// that stops reading parks us in poll(POLLOUT) until the deadline, never
// forever. `timed_out` (if non-null) tells a failed send apart from a dead
// peer. Routed through the "serve.send" fault point: Errno aborts the send,
// ShortIo delivers a partial write and then aborts (a crashed-writer wire).
bool send_all(int fd, const std::string& bytes, int timeout_ms,
              bool* timed_out = nullptr) {
  if (timed_out) *timed_out = false;
  const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  std::size_t sent = 0;
  std::size_t cap = bytes.size();
  bool abort_after_cap = false;
  if (util::fault::enabled()) {
    const util::fault::Action a = util::fault::at("serve.send");
    if (a.kind == util::fault::Kind::Errno) return false;
    if (a.kind == util::fault::Kind::ShortIo) {
      cap = std::min(cap, a.bytes);
      abort_after_cap = true;
    }
  }
  while (sent < cap) {
    const ssize_t n =
        ::send(fd, bytes.data() + sent, cap - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      pollfd p{fd, POLLOUT, 0};
      const int pr = ::poll(&p, 1, std::min(kPollTickMs, ms_until(deadline)));
      if (pr < 0 && errno != EINTR) return false;
      if (ms_until(deadline) == 0) {
        if (timed_out) *timed_out = true;
        return false;
      }
      continue;
    }
    return false;  // peer went away; nothing useful to do
  }
  return !abort_after_cap && sent == bytes.size();
}

HttpResponse json_error_response(int status, const std::string& message) {
  return make_response(status, "application/json",
                       "{\"error\": \"" + util::json_escape(message) + "\"}\n");
}

}  // namespace

namespace {

bool coordinator_mode(const ServerOptions& o) {
  return !o.coordinator.workers.empty() || o.coordinator.accept_registrations;
}

}  // namespace

// A standby must not open the shared journal at construction: the primary
// owns it until takeover (two concurrent writers are unsupported), so the
// journal and the coordinator are built in promote() instead.
Server::Server(const ServerOptions& options)
    : options_(options),
      cache_(options.cache_entries, options.cache_dir),
      plan_cache_(options.plan_cache_entries == 0
                      ? nullptr
                      : std::make_unique<PlanCache>(options.plan_cache_entries,
                                                    options.plan_cache_dir)),
      sweep_journal_(options.sweep_journal_dir.empty() ||
                             !options.standby_of.empty()
                         ? nullptr
                         : std::make_unique<core::SweepJournal>(
                               options.sweep_journal_dir)),
      coordinator_(!coordinator_mode(options) || !options.standby_of.empty()
                       ? nullptr
                       : std::make_unique<Coordinator>(options.coordinator,
                                                       &metrics_,
                                                       sweep_journal_.get())),
      service_(&cache_, sweep_journal_.get(), plan_cache_.get(),
               coordinator_.get()) {
  if (!options.standby_of.empty()) {
    if (options.sweep_journal_dir.empty())
      throw std::invalid_argument(
          "server: --standby-of requires --sweep-journal (the shared journal "
          "is what the standby resumes from)");
    parse_host_port(options.standby_of, "--standby-of");  // validate early
    role_.store(Role::Standby);
  }
  if (!options.joiner.endpoints.empty() &&
      (coordinator_mode(options) || !options.standby_of.empty()))
    throw std::invalid_argument(
        "server: --join is a worker role; it cannot be combined with "
        "--workers/--coordinator/--standby-of");
}

Server::~Server() { stop(); }

void Server::start() {
  if (listen_fd_ >= 0) throw std::runtime_error("server already started");

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1)
    throw std::runtime_error("server: bad bind address '" + options_.host +
                             "' (numeric IPv4 required)");

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0)
    throw std::runtime_error(std::string("server: socket: ") +
                             std::strerror(errno));
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string why = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("server: cannot bind " + options_.host + ":" +
                             std::to_string(options_.port) + ": " + why);
  }
  if (::listen(listen_fd_, 128) != 0) {
    const std::string why = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("server: listen: " + why);
  }

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
  port_ = ntohs(bound.sin_port);

  // Dispatch pool for connection handlers. ThreadPool(j) keeps j - 1
  // workers (its parallel_for_index caller is the remaining job); the
  // accept thread never participates, so size +1 to get the wanted width.
  const int width =
      options_.dispatch_jobs > 0
          ? options_.dispatch_jobs
          : options_.max_connections > 0
                ? std::min(std::max(options_.max_connections, 2), 8)
                : 8;
  dispatch_pool_ = std::make_unique<util::ThreadPool>(width + 1);

  stopping_.store(false);
  accepting_.store(true);
  if (coordinator_) coordinator_->start();  // worker-health prober

  // Worker role: register with the coordinator(s) now that the bound port
  // is known, then keep the lease renewed. Built *before* the accept
  // thread spawns so handler threads see a fully published joiner_ (the
  // listen backlog already queues connections arriving meanwhile).
  if (!options_.joiner.endpoints.empty()) {
    JoinerOptions jo = options_.joiner;
    if (jo.advertise_host.empty()) jo.advertise_host = options_.host;
    if (jo.advertise_port == 0) jo.advertise_port = port_;
    joiner_ = std::make_unique<Joiner>(jo, &metrics_);
    joiner_->start();
  }

  accept_thread_ = std::thread([this] { accept_loop(); });

  // Standby role: watch the primary's /healthz; promote on its silence.
  if (role_.load() == Role::Standby) {
    {
      std::lock_guard<std::mutex> lock(standby_mu_);
      standby_stop_ = false;
    }
    standby_thread_ = std::thread([this] { standby_loop(); });
  }
}

void Server::stop() {
  if (listen_fd_ < 0 && !accept_thread_.joinable()) return;

  // Graceful worker drain, sequenced for zero requeues on planned
  // maintenance: deregister first (the coordinator stops routing new chunks
  // here), give a beat for chunks routed just before the deregister landed
  // to reach the listener, and only then stop accepting. In-flight chunks
  // finish below under the ordinary connection drain.
  if (joiner_) {
    joiner_->drain();
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  // Standby watcher: must be gone before teardown (it touches coordinator_).
  {
    std::lock_guard<std::mutex> lock(standby_mu_);
    standby_stop_ = true;
  }
  standby_cv_.notify_all();
  if (standby_thread_.joinable()) standby_thread_.join();

  stopping_.store(true);
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  // Drain: every dispatched connection holds a slot until its loop exits.
  {
    std::unique_lock<std::mutex> lock(mu_);
    drained_cv_.wait(lock, [this] { return active_connections_ == 0; });
  }
  dispatch_pool_.reset();  // joins the (now idle) handler threads
  if (coordinator_) coordinator_->stop();
  accepting_.store(false);
}

void Server::standby_loop() {
  const HostPort primary = parse_host_port(options_.standby_of, "--standby-of");
  const int interval_ms = std::max(1, options_.coordinator.probe.interval_ms);
  const int timeout_ms = options_.coordinator.probe.timeout_ms;
  // The grace clock starts now: a standby booted against a primary that is
  // already dead still waits out one takeover window before promoting.
  std::int64_t last_ok_ms = WorkerPool::now_ms();
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(standby_mu_);
      if (standby_cv_.wait_for(lock, std::chrono::milliseconds(interval_ms),
                               [this] { return standby_stop_; }))
        return;
    }
    // "coord.takeover" fault point: an armed shot fails this probe, so
    // takeover drills can force promotion without killing a real primary.
    bool ok = false;
    if (!(util::fault::enabled() &&
          util::fault::at("coord.takeover").kind ==
              util::fault::Kind::Errno)) {
      try {
        HttpRequest req;
        req.method = "GET";
        req.target = "/healthz";
        ok = http_fetch(primary.host, primary.port, std::move(req),
                        timeout_ms)
                 .status == 200;
      } catch (const FetchError&) {
        ok = false;
      }
    }
    if (ok) {
      last_ok_ms = WorkerPool::now_ms();
      continue;
    }
    if (WorkerPool::now_ms() - last_ok_ms >
        std::max<std::int64_t>(1, options_.standby_takeover_ms)) {
      if (promote()) return;
      // Refused: the primary still holds the journal's writer lock, so it
      // is provably alive behind a partition (or the journal dir is
      // broken). Either way promoting now would be split-brain — restart
      // the grace clock and keep watching.
      last_ok_ms = WorkerPool::now_ms();
    }
  }
}

// Standby -> Active. By the time this runs the primary has been silent for
// a full takeover window. Opening the journal acquires its exclusive
// writer lock, which is the split-brain fence: a primary that is merely
// partitioned (alive, still appending) still holds the lock, the open
// throws SweepJournalLocked, and this side stays a standby instead of
// interleaving a second writer into the shared file. A dead primary's lock
// died with it, so the open succeeds and this side becomes the single
// writer. Everything the primary knew is replayed from the journal —
// completed points byte-identically, membership into fresh leases (a
// worker that is truly gone fails to renew and expires). Returns false
// when promotion was refused.
bool Server::promote() {
  SQZ_LOG(Warn) << "server: primary " << options_.standby_of
                << " silent for " << options_.standby_takeover_ms
                << " ms; taking over as coordinator";
  try {
    sweep_journal_ =
        std::make_unique<core::SweepJournal>(options_.sweep_journal_dir);
  } catch (const core::SweepJournalLocked& e) {
    SQZ_LOG(Warn) << "server: takeover refused — " << e.what()
                  << "; remaining standby";
    return false;
  } catch (const core::SweepJournalError& e) {
    SQZ_LOG(Error) << "server: takeover failed — " << e.what()
                   << "; remaining standby";
    return false;
  }
  CoordinatorOptions copts = options_.coordinator;
  copts.accept_registrations = true;  // inherit the primary's dynamic fleet
  coordinator_ =
      std::make_unique<Coordinator>(copts, &metrics_, sweep_journal_.get());
  coordinator_->replay_membership(sweep_journal_->membership());
  coordinator_->record_takeover(options_.host + ":" + std::to_string(port_));
  coordinator_->start();
  service_ = SimService(&cache_, sweep_journal_.get(), plan_cache_.get(),
                        coordinator_.get());
  // The release store publishes everything above to handler threads, which
  // only touch service_/coordinator_ after observing Role::Active.
  role_.store(Role::Active);
  return true;
}

// Answer an over-cap connection with 503 + Retry-After and close it. Runs
// on the accept thread, so the send deadline is short: a peer that will not
// read two hundred bytes promptly forfeits its goodbye note.
void Server::shed_connection(int fd) {
  metrics_.record_shed();
  set_nonblocking(fd);
  HttpResponse resp = json_error_response(
      503, "server at --max-connections; retry with backoff");
  resp.headers.emplace_back("Retry-After", "1");
  resp.headers.emplace_back("Connection", "close");
  send_all(fd, resp.serialize(), /*timeout_ms=*/1000);
  ::close(fd);
}

void Server::accept_loop() {
  int backoff_ms = kAcceptBackoffStartMs;
  while (!stopping_.load()) {
    pollfd p{listen_fd_, POLLIN, 0};
    const int pr = ::poll(&p, 1, kPollTickMs);
    if (pr <= 0) continue;  // timeout tick or EINTR: re-check stopping_

    int fd;
    const util::fault::Action a = util::fault::at("serve.accept");
    if (a.kind == util::fault::Kind::Errno) {
      errno = a.err;
      fd = -1;
    } else {
      fd = ::accept(listen_fd_, nullptr, nullptr);
    }
    if (fd < 0) {
      // Out of descriptors (or memory): the listener stays healthy, but
      // accepting again immediately would spin at 100% CPU re-failing.
      // Back off — pending connections wait in the backlog meanwhile.
      if (errno == EMFILE || errno == ENFILE || errno == ENOMEM) {
        metrics_.record_accept_backoff();
        const auto wake = Clock::now() + std::chrono::milliseconds(backoff_ms);
        while (!stopping_.load() && ms_until(wake) > 0)
          std::this_thread::sleep_for(std::chrono::milliseconds(
              std::min(kPollTickMs, ms_until(wake))));
        backoff_ms = std::min(backoff_ms * 2, kAcceptBackoffCapMs);
      }
      continue;
    }
    backoff_ms = kAcceptBackoffStartMs;

    int active;
    {
      std::lock_guard<std::mutex> lock(mu_);
      active = active_connections_;
    }
    if (options_.max_connections > 0 && active >= options_.max_connections) {
      shed_connection(fd);
      continue;
    }

    {
      std::lock_guard<std::mutex> lock(mu_);
      ++active_connections_;
    }
    dispatch_pool_->submit([this, fd] {
      handle_connection(fd);
      ::close(fd);
      {
        std::lock_guard<std::mutex> lock(mu_);
        --active_connections_;
      }
      drained_cv_.notify_all();
    });
  }
  accepting_.store(false);
}

void Server::handle_connection(int fd) {
  set_nonblocking(fd);
  std::string buffer;
  char chunk[16384];
  const ParseLimits limits{64 * 1024, options_.max_body_bytes};
  const auto request_budget =
      std::chrono::milliseconds(options_.request_timeout_ms);
  const auto idle_budget = std::chrono::milliseconds(options_.idle_timeout_ms);

  // Two clocks: `idle_deadline` runs while the buffer is empty (keep-alive
  // lull), `request_deadline` runs from the first byte of a request until
  // it parses completely. Responses get their own drain deadline inside
  // send_all.
  auto idle_deadline = Clock::now() + idle_budget;
  auto request_deadline = Clock::now() + request_budget;

  for (;;) {
    // Try to serve every complete request already buffered.
    for (;;) {
      HttpRequest request;
      std::size_t consumed = 0;
      std::string parse_error;
      const ParseStatus ps =
          parse_http_request(buffer, request, consumed, &parse_error, limits);
      if (ps == ParseStatus::Error || ps == ParseStatus::TooLarge) {
        const int status = ps == ParseStatus::TooLarge ? 413 : 400;
        if (ps == ParseStatus::TooLarge) metrics_.record_oversize();
        HttpResponse resp = json_error_response(status, parse_error);
        resp.headers.emplace_back("Connection", "close");
        send_all(fd, resp.serialize(), options_.request_timeout_ms);
        return;
      }
      if (ps == ParseStatus::NeedMore) break;
      buffer.erase(0, consumed);
      // Pipelined bytes already buffered start the next request's clock.
      request_deadline = Clock::now() + request_budget;

      metrics_.request_started();
      const auto t0 = Clock::now();
      HttpResponse resp = route(request);
      const double seconds =
          std::chrono::duration<double>(Clock::now() - t0).count();
      metrics_.record_request(seconds, resp.status);
      metrics_.request_finished();

      const bool close_after = request.wants_close() || stopping_.load();
      resp.headers.emplace_back("Connection",
                                close_after ? "close" : "keep-alive");
      bool send_timed_out = false;
      if (!send_all(fd, resp.serialize(), options_.request_timeout_ms,
                    &send_timed_out)) {
        if (send_timed_out) metrics_.record_timeout();
        return;
      }
      if (close_after) return;
      idle_deadline = Clock::now() + idle_budget;
    }

    // Wait for more bytes, bounded by whichever deadline applies.
    const bool mid_request = !buffer.empty();
    const auto deadline = mid_request ? request_deadline : idle_deadline;
    if (ms_until(deadline) == 0) {
      if (mid_request) {
        // The peer started a request but never finished it in time.
        metrics_.record_timeout();
        HttpResponse resp = json_error_response(
            408, "request not completed within " +
                     std::to_string(options_.request_timeout_ms) + " ms");
        resp.headers.emplace_back("Connection", "close");
        send_all(fd, resp.serialize(), /*timeout_ms=*/1000);
      } else if (!stopping_.load()) {
        metrics_.record_idle_closed();
      }
      return;
    }

    pollfd p{fd, POLLIN, 0};
    const int pr =
        ::poll(&p, 1, std::min(kPollTickMs, ms_until(deadline)));
    if (pr < 0 && errno != EINTR) return;
    if (pr == 0) {
      if (stopping_.load() && buffer.empty()) return;  // idle at shutdown
      continue;
    }
    if (pr > 0) {
      std::size_t cap = sizeof(chunk);
      if (util::fault::enabled()) {
        const util::fault::Action a = util::fault::at("serve.recv");
        if (a.kind == util::fault::Kind::Errno) return;  // injected I/O error
        if (a.kind == util::fault::Kind::ShortIo)
          cap = std::min(cap, std::max<std::size_t>(1, a.bytes));
      }
      const ssize_t n = ::recv(fd, chunk, cap, 0);
      if (n == 0) return;  // peer closed
      if (n < 0) {
        if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)
          continue;
        return;
      }
      if (buffer.empty())  // first byte of a new request starts its clock
        request_deadline = Clock::now() + request_budget;
      buffer.append(chunk, static_cast<std::size_t>(n));
    }
  }
}

HttpResponse Server::route(const HttpRequest& request) {
  try {
    if (request.target == "/healthz") {
      if (request.method != "GET" && request.method != "HEAD")
        return json_error_response(405, "use GET " + request.target);
      // Readiness JSON. The status code is the liveness contract (200 =
      // alive); the body is for operators and the coordinator's prober.
      //
      // One role load governs every promoted-member read below: until this
      // handler observes Role::Active, sweep_journal_/coordinator_ may be
      // mid-assignment on the standby thread (promote() runs while the
      // standby keeps serving /healthz), so a Standby snapshot renders
      // those blocks as disabled without ever touching the pointers. The
      // seq_cst load pairs with promote()'s store as acquire/release.
      const bool is_standby = role_.load() == Role::Standby;
      core::SweepJournal* journal = is_standby ? nullptr : sweep_journal_.get();
      Coordinator* coordinator = is_standby ? nullptr : coordinator_.get();
      const Metrics::Snapshot m = metrics_.snapshot();
      const SimCache::Stats cs = cache_.stats();
      int active;
      {
        std::lock_guard<std::mutex> lock(mu_);
        active = active_connections_;
      }
      const std::uint64_t accepted = static_cast<std::uint64_t>(active);
      std::ostringstream os;
      util::JsonWriter w(os, /*indent=*/0);
      w.begin_object();
      w.member("status", "ok");
      w.member("requests_in_flight", m.in_flight);
      // Connections accepted but not currently executing a request: a
      // proxy for dispatch-queue pressure ahead of the handler pool.
      w.member("dispatch_queue_depth",
               accepted > m.in_flight ? accepted - m.in_flight : 0);
      w.key("cache");
      w.begin_object();
      w.member("entries", cs.entries);
      w.member("disk_tier", options_.cache_dir.empty()
                                ? "disabled"
                                : cs.disk_demoted ? "demoted" : "ok");
      w.end_object();
      w.key("plan_cache");
      w.begin_object();
      w.member("enabled", plan_cache_ != nullptr);
      w.member("entries",
               plan_cache_ ? plan_cache_->stats().entries : std::size_t{0});
      w.end_object();
      w.key("journal");
      w.begin_object();
      w.member("enabled", journal != nullptr);
      w.member("recovered_records",
               journal ? journal->recovery().records : std::size_t{0});
      w.end_object();
      w.key("coordinator");
      w.begin_object();
      w.member("enabled", coordinator != nullptr);
      w.member("workers",
               coordinator ? coordinator->pool().size() : std::size_t{0});
      w.member("workers_up", coordinator ? coordinator->pool().usable_count()
                                         : std::size_t{0});
      w.end_object();
      // Membership block (ARCHITECTURE.md "Dynamic membership & coordinator
      // HA"): present only in a membership-bearing role, so a plain
      // worker's /healthz shape is unchanged.
      if (is_standby) {
        w.key("membership");
        w.begin_object();
        w.member("role", "standby");
        w.member("primary", options_.standby_of);
        w.end_object();
      } else if (coordinator) {
        const WorkerPool& pool = coordinator->pool();
        const MemberCounts counts = pool.member_counts();
        const std::int64_t now = WorkerPool::now_ms();
        w.key("membership");
        w.begin_object();
        w.member("role", "coordinator");
        w.member("epoch", pool.epoch());
        w.key("workers");
        w.begin_object();
        w.member("healthy", counts.healthy);
        w.member("suspect", counts.suspect);
        w.member("ejected", counts.ejected);
        w.member("probation", counts.probation);
        w.member("departed", counts.departed);
        w.end_object();
        w.key("leases");
        w.begin_array();
        for (const LeaseInfo& lease : pool.lease_table(now)) {
          if (!lease.alive) continue;
          w.begin_object();
          w.member("worker", lease.address);
          w.member("ttl_ms", lease.lease_ms);  // 0 = static, never expires
          w.member("age_ms", lease.age_ms);
          w.end_object();
        }
        w.end_array();
        w.end_object();
      } else if (joiner_) {
        w.key("membership");
        w.begin_object();
        w.member("role", "worker");
        w.member("joined", joiner_->joined());
        w.member("coordinator", joiner_->current_endpoint());
        // The TTL the coordinator actually granted (it may clamp the
        // requested one); the heartbeat cadence is granted / 3.
        w.member("lease_ms", joiner_->granted_lease_ms());
        w.end_object();
      }
      w.end_object();
      return make_response(200, "application/json", os.str() + "\n");
    }
    if (request.target == "/metrics") {
      if (request.method != "GET")
        return json_error_response(405, "use GET /metrics");
      return make_response(200, "text/plain; version=0.0.4",
                           metrics_.render(cache_.stats(),
                                           plan_cache_ ? plan_cache_->stats()
                                                       : PlanCache::Stats{}));
    }
    if (request.target == "/v1/workers/register" ||
        request.target == "/v1/workers/deregister") {
      if (request.method != "POST")
        return json_error_response(405, "use POST " + request.target);
      // A passive standby answers 503, not 404: it *will* be a coordinator,
      // so joining workers should keep it in their endpoint rotation.
      if (role_.load() == Role::Standby)
        return json_error_response(
            503, "standby coordinator; not accepting registrations yet");
      if (!coordinator_)
        return json_error_response(
            404, "not a coordinator: start with --workers or --coordinator");
      const WorkerRegistration reg = parse_worker_registration(request.body);
      const HostPort addr{reg.host, reg.port};
      std::ostringstream os;
      util::JsonWriter w(os, /*indent=*/0);
      w.begin_object();
      if (request.target == "/v1/workers/register") {
        const WorkerPool::Registration r =
            coordinator_->register_worker(addr, reg.lease_ms);
        w.member("status", "registered");
        w.member("epoch", r.epoch);
        w.member("lease_ms", r.lease_ms);
      } else {
        const bool known = coordinator_->deregister_worker(addr);
        w.member("status", known ? "deregistered" : "unknown");
        w.member("epoch", coordinator_->pool().epoch());
      }
      w.end_object();
      return make_response(200, "application/json", os.str() + "\n");
    }
    if (request.target == "/v1/simulate" || request.target == "/v1/sweep") {
      if (request.method != "POST")
        return json_error_response(405, "use POST " + request.target);
      if (role_.load() == Role::Standby)
        return json_error_response(
            503, "standby coordinator; primary " + options_.standby_of +
                     " is serving");
      const SimService::Result result = request.target == "/v1/simulate"
                                            ? service_.simulate(request.body)
                                            : service_.sweep(request.body);
      if (request.target == "/v1/sweep" && !result.cache_hit)
        metrics_.record_sweep(result.sweep.points, result.sweep.point_errors,
                              result.sweep.resumed, result.sweep.screen_points,
                              result.sweep.screen_kept,
                              result.sweep.screen_error_max_pct);
      HttpResponse resp =
          make_response(200, "application/json", result.body);
      resp.headers.emplace_back("X-Sqz-Cache",
                                result.cache_hit ? "hit" : "miss");
      // Only meaningful on executed requests with a plan cache in play: a
      // result-cache hit never consults it, and a disabled cache has no
      // hit/miss story to tell.
      if (plan_cache_ && request.target == "/v1/simulate" && !result.cache_hit)
        resp.headers.emplace_back("X-Sqz-Plan",
                                  result.plan_hit ? "hit" : "miss");
      return resp;
    }
    return json_error_response(404, "no such endpoint: " + request.target);
  } catch (const ApiError& e) {
    return json_error_response(e.status(), e.what());
  } catch (const std::exception& e) {
    return json_error_response(500, e.what());
  }
}

}  // namespace sqz::serve
