// Content-addressed cache of compiled plans (sched/plan_io.h) for the
// simulation service.
//
// Keyed exactly like the result cache (serve/simcache.h): the FNV-1a hash
// of the canonicalized /v1/simulate request names the entry, so a plan
// compiled for one spelling of a request serves every equivalent spelling.
// Where the result cache stores response bytes, this cache stores the
// *schedule* — so even when the exact response has been evicted (or the
// daemon restarted with a fresh memory tier), a warm plan lets the service
// skip the dual-dataflow compile search and replay the recorded decisions,
// byte-identical by determinism (tests/serve/test_plan_serve.cpp).
//
// Two tiers, same discipline as SimCache:
//   - in-memory LRU of decoded PlanArtifacts;
//   - optional on-disk (`--plan-cache-dir`): one `<hash>.plan` file per key
//     holding exactly the serialize_plan bytes — a file any `sqzsim
//     --load-plan` can read. Written atomically (tmp + rename), swept for
//     crashed-writer leftovers at startup.
//
// The disk tier trusts nothing: load_plan verifies magic, version,
// checksum, grammar, and Program::validate before a plan is usable. Any
// defect quarantines the file (`*.bad`) and counts as a miss — a corrupt
// plan can never 500 a request, because the service falls back to a fresh
// compile. A hash collision is caught semantically: the artifact's model
// hash / config / options must match the request or the entry is a miss.
// The "plan.read" / "plan.write" fault points (armed in
// tests/serve/test_chaos.cpp) drive every failure path deterministically.
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "sched/plan_io.h"

namespace sqz::serve {

class PlanCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;       ///< Plans served from memory or disk.
    std::uint64_t disk_hits = 0;  ///< Subset of hits that came from disk.
    std::uint64_t misses = 0;
    std::uint64_t corrupt = 0;    ///< Defective disk plans quarantined *.bad.
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;  ///< Memory-tier LRU evictions.
    std::size_t entries = 0;      ///< Current memory-tier size.
    std::uint64_t disk_errors = 0;  ///< I/O failures absorbed (not corruption).
  };

  /// `max_entries` bounds the memory tier (>= 1). `disk_dir` enables the
  /// on-disk tier; the directory is created if missing (throws
  /// std::runtime_error when that fails).
  explicit PlanCache(std::size_t max_entries, const std::string& disk_dir = "");

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// Look up the plan for a canonicalized request. `model_hash` /
  /// `config` / `options` are the request's identity; a stored plan that
  /// does not match them exactly (a 64-bit key collision, or a hand-placed
  /// file) is a miss, never a wrong plan. Thread-safe.
  std::optional<sched::PlanArtifact> get(
      const std::string& canonical_key, std::uint64_t model_hash,
      const sim::AcceleratorConfig& config,
      const sched::SimulationOptions& options);

  /// Insert a freshly compiled plan. Thread-safe.
  void put(const std::string& canonical_key,
           const sched::PlanArtifact& artifact);

  Stats stats() const;

 private:
  struct Entry {
    std::uint64_t hash;
    std::string key;  ///< Full canonical key, collision guard.
    sched::PlanArtifact artifact;
  };

  bool matches(const sched::PlanArtifact& artifact, std::uint64_t model_hash,
               const sim::AcceleratorConfig& config,
               const sched::SimulationOptions& options) const;
  std::optional<sched::PlanArtifact> disk_get(
      std::uint64_t hash, std::uint64_t model_hash,
      const sim::AcceleratorConfig& config,
      const sched::SimulationOptions& options);
  void insert_locked(std::uint64_t hash, const std::string& key,
                     const sched::PlanArtifact& artifact);
  std::string disk_path(std::uint64_t hash) const;
  void scan_disk_tier();
  void quarantine(const std::string& path, const std::string& why);

  const std::size_t max_entries_;
  const std::string disk_dir_;

  mutable std::mutex mu_;
  std::list<Entry> lru_;  ///< Front = most recently used.
  std::unordered_map<std::uint64_t, std::list<Entry>::iterator> index_;
  Stats stats_;
};

}  // namespace sqz::serve
