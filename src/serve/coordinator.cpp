#include "serve/coordinator.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <map>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>

#include "core/config_io.h"
#include "core/dse.h"
#include "core/sweepjournal.h"
#include "nn/serialize.h"
#include "serve/metrics.h"
#include "util/faultinject.h"
#include "util/hash.h"
#include "util/json.h"
#include "util/json_parse.h"
#include "util/logging.h"

namespace sqz::serve {

struct Coordinator::Flight {
  /// One chunk position's outcome. A slot either carries the worker's
  /// metrics or the structured error that replaced them.
  struct Slot {
    bool ok = false;
    std::int64_t cycles = 0;
    double energy = 0.0;
    double utilization = 0.0;
    core::PointError error;  ///< When !ok.
  };

  std::mutex m;
  std::condition_variable cv;
  bool done = false;      ///< Guarded by m; set exactly once.
  bool ok = false;        ///< done: slots are valid (else fail_what is).
  std::string fail_what;  ///< done && !ok: the dispatch diagnostic.
  std::vector<Slot> slots;
};

namespace {

using Clock = std::chrono::steady_clock;
using Slot = Coordinator::Flight::Slot;

const util::JsonValue* member(const util::JsonValue& obj,
                              const std::string& key) {
  for (const auto& [k, v] : obj.members)
    if (k == key) return &v;
  return nullptr;
}

std::vector<HostPort> parse_workers(const std::vector<std::string>& specs) {
  std::vector<HostPort> out;
  out.reserve(specs.size());
  for (const std::string& spec : specs)
    out.push_back(parse_host_port(spec, "--workers"));
  return out;
}

/// The /v1/sweep body for one chunk: the base request re-rendered with the
/// model as serialized text, the config as its INI rendering, every option
/// explicit, and only the chunk's own knob values. Workers re-derive the
/// same labels and design-point keys the coordinator holds, because both
/// sides run the same sweep builders over the same canonical inputs.
std::string chunk_request_body(const SweepRequest& req,
                               const std::string& model_text,
                               const std::string& config_ini,
                               const std::vector<std::size_t>& idx) {
  std::ostringstream os;
  util::JsonWriter w(os, /*indent=*/0);
  w.begin_object();
  w.member("model_text", model_text);
  w.member("config_ini", config_ini);
  w.key("options");
  w.begin_object();
  w.member("objective", req.base.options.objective == sched::Objective::Energy
                            ? "energy"
                            : "cycles");
  w.member("timeline", req.base.options.tile_timeline);
  w.member("double_buffered", req.base.options.double_buffered);
  w.member("tile_search", req.base.options.tile_search);
  w.member("fuse", req.base.options.fuse_pool_drain);
  w.end_object();
  w.key("sweep");
  w.begin_object();
  w.member("knob", req.knob);
  w.key("values");
  w.begin_array();
  for (const std::size_t i : idx) w.value(req.values[i]);
  w.end_array();
  w.end_object();
  w.end_object();
  return os.str();
}

/// Map a worker's sweep dump back onto the chunk's positions. "points" and
/// "errors" both preserve input order, so a single greedy pass with two
/// cursors assigns every label; pareto/config members are ignored (the
/// coordinator recomputes them over the full point set). Returns false on
/// any shape surprise — the caller treats that as a failed dispatch.
bool parse_chunk_response(const std::string& body,
                          const std::vector<std::string>& labels,
                          std::vector<Slot>& out) {
  try {
    const util::JsonValue doc = util::parse_json(body);
    if (!doc.is_object()) return false;
    const util::JsonValue* points = member(doc, "points");
    const util::JsonValue* errors = member(doc, "errors");
    if (!points || !points->is_array()) return false;
    if (errors && !errors->is_array()) return false;
    out.assign(labels.size(), Slot{});
    std::size_t pi = 0;
    std::size_t ei = 0;
    for (std::size_t p = 0; p < labels.size(); ++p) {
      Slot& slot = out[p];
      if (pi < points->items.size() &&
          points->items[pi].at("label").as_string() == labels[p]) {
        const util::JsonValue& v = points->items[pi++];
        slot.ok = true;
        slot.cycles = v.at("cycles").as_int();
        slot.energy = v.at("energy").as_double();
        slot.utilization = v.at("utilization").as_double();
      } else if (errors && ei < errors->items.size() &&
                 errors->items[ei].at("label").as_string() == labels[p]) {
        const util::JsonValue& v = errors->items[ei++];
        slot.ok = false;
        slot.error.label = labels[p];
        slot.error.key = v.at("key").as_string();
        slot.error.phase = v.at("phase").as_string();
        slot.error.what = v.at("what").as_string();
      } else {
        return false;  // the worker answered for a different point set
      }
    }
    return pi == points->items.size() &&
           ei == (errors ? errors->items.size() : 0);
  } catch (const std::exception&) {
    return false;
  }
}

enum class ChunkState { Queued, InFlight, Done, Failed };

/// One dispatched chunk. idx/labels/body/hash/flight/owner are immutable
/// after sharding; the dispatch state below them is guarded by Run::mu.
struct Chunk {
  std::vector<std::size_t> idx;     ///< Global point indices, input order.
  std::vector<std::string> labels;  ///< Sweep labels, aligned with idx.
  std::string body;                 ///< The worker /v1/sweep request.
  std::uint64_t hash = 0;           ///< Ring position (first point's key).
  std::shared_ptr<Coordinator::Flight> flight;
  bool owner = false;  ///< This run dispatches; a waiter only observes.

  ChunkState state = ChunkState::Queued;
  std::vector<int> tried;    ///< Workers this chunk was already sent to.
  Clock::time_point started{};  ///< Last primary dispatch, for straggling.
  int requeues = 0;
  bool steal_pending = false;  ///< A steal is queued or on the wire.
};

/// Per-run_sweep dispatch state shared between the dispatcher threads and
/// the straggler monitor.
struct Run {
  std::mutex mu;
  std::condition_variable cv;
  std::vector<Chunk> chunks;
  std::deque<std::pair<std::size_t, bool>> queue;  ///< (chunk, is_steal).
  bool quit = false;
};

}  // namespace

Coordinator::Coordinator(const CoordinatorOptions& options, Metrics* metrics,
                         core::SweepJournal* journal)
    : options_(options),
      metrics_(metrics),
      journal_(journal),
      pool_(parse_workers(options.workers), options.probe, metrics) {
  // Lease expirations are detected by the pool's prober thread; hook them
  // here so each one lands in the journal as an sqzm1 event — the standby's
  // replay must not resurrect a member the primary already expired.
  pool_.set_expiry_callback([this](const std::vector<std::string>& expired) {
    const std::uint64_t epoch = pool_.epoch();
    for (const std::string& addr : expired)
      journal_membership(addr, "expire", 0, epoch);
  });
}

Coordinator::~Coordinator() { stop(); }

void Coordinator::start() { pool_.start(); }

void Coordinator::stop() { pool_.stop(); }

void Coordinator::journal_membership(const std::string& addr,
                                     const char* event, std::int64_t lease_ms,
                                     std::uint64_t epoch) {
  if (!journal_) return;
  std::ostringstream os;
  util::JsonWriter w(os, /*indent=*/0);
  w.begin_object();
  w.member("event", std::string(event));
  w.member("lease_ms", lease_ms);
  w.member("epoch", static_cast<std::int64_t>(epoch));
  w.end_object();
  try {
    journal_->append_membership(addr, os.str());
  } catch (const core::SweepJournalError& e) {
    // Not fatal: a lost event costs the standby at most one lease window —
    // live workers re-register via heartbeat, dead ones expire.
    SQZ_LOG(Warn) << "coordinator: membership journal append failed: "
                  << e.what();
  }
}

WorkerPool::Registration Coordinator::register_worker(const HostPort& addr,
                                                      std::int64_t lease_ms) {
  // "coord.register" fault point: refuse the registration as a 503 so the
  // joining worker's jittered-retry loop is drilled deterministically.
  if (util::fault::enabled() &&
      util::fault::at("coord.register").kind == util::fault::Kind::Errno)
    throw ApiError(503, "registration refused (injected coord.register fault)");
  if (lease_ms <= 0) lease_ms = options_.default_lease_ms;
  const WorkerPool::Registration r =
      pool_.register_worker(addr, lease_ms, WorkerPool::now_ms());
  if (metrics_) metrics_->record_coord_register();
  if (r.newly_added)
    journal_membership(addr.host + ":" + std::to_string(addr.port),
                       "register", r.lease_ms, r.epoch);
  return r;
}

bool Coordinator::deregister_worker(const HostPort& addr) {
  std::uint64_t epoch = 0;
  if (!pool_.deregister_worker(addr, WorkerPool::now_ms(), &epoch))
    return false;
  journal_membership(addr.host + ":" + std::to_string(addr.port),
                     "deregister", 0, epoch);
  return true;
}

void Coordinator::replay_membership(
    const std::vector<std::pair<std::string, std::string>>& events) {
  const std::int64_t now = WorkerPool::now_ms();
  for (const auto& [addr_spec, value] : events) {
    std::string event;
    std::int64_t lease_ms = 0;
    try {
      const util::JsonValue doc = util::parse_json(value);
      if (const util::JsonValue* e = member(doc, "event"))
        event = e->as_string();
      if (const util::JsonValue* l = member(doc, "lease_ms"))
        lease_ms = l->as_int();
    } catch (const std::exception&) {
      continue;  // foreign/corrupt event: skip, do not fail the takeover
    }
    HostPort addr;
    try {
      addr = parse_host_port(addr_spec, "journal");
    } catch (const std::invalid_argument&) {
      continue;  // e.g. a takeover event keyed on a coordinator address
    }
    if (event == "register") {
      // Fresh lease stamped now: a member that is actually gone fails to
      // renew and expires one lease window after the takeover.
      pool_.register_worker(addr, lease_ms, now);
    } else if (event == "deregister" || event == "expire") {
      pool_.deregister_worker(addr, now);
    }
  }
}

void Coordinator::record_takeover(const std::string& standby_addr) {
  journal_membership(standby_addr, "takeover", 0, pool_.epoch());
  if (metrics_) metrics_->record_coord_takeover();
}

std::shared_ptr<Coordinator::Flight> Coordinator::attach_flight(
    const std::string& chunk_body, std::size_t chunk_size, bool& owner) {
  std::lock_guard<std::mutex> lock(flights_mu_);
  std::shared_ptr<Flight>& slot = flights_[chunk_body];
  if (slot) {
    owner = false;
    if (metrics_) metrics_->record_coord_singleflight_hit();
    return slot;
  }
  slot = std::make_shared<Flight>();
  slot->slots.resize(chunk_size);
  owner = true;
  return slot;
}

void Coordinator::finish_flight(const std::string& chunk_body,
                                const std::shared_ptr<Flight>& flight) {
  std::lock_guard<std::mutex> lock(flights_mu_);
  const auto it = flights_.find(chunk_body);
  if (it != flights_.end() && it->second == flight) flights_.erase(it);
}

std::string Coordinator::run_sweep(const SweepRequest& req,
                                   core::SweepJournal* journal,
                                   SweepRunStats* stats) {
  if (req.screen)
    throw ApiError(400,
                   "screened sweeps cannot be coordinated: the retained "
                   "Pareto band is a property of the whole point set; post "
                   "sweep.screen requests to a worker directly");

  const std::vector<std::pair<std::string, sim::AcceleratorConfig>> configs =
      sweep_configs(req);
  const std::string model_text = nn::serialize_model(req.base.model);
  const std::string config_ini = core::config_to_ini(req.base.config);
  const std::size_t n = configs.size();

  // Canonical identity per point: the journal key, and (hashed) the ring
  // position — so a point shards to the same worker sweep after sweep.
  std::vector<std::string> keys(n);
  for (std::size_t i = 0; i < n; ++i)
    keys[i] = core::design_point_key(model_text, configs[i].first,
                                     configs[i].second,
                                     req.base.options.objective);

  core::SweepOutcome outcome;
  std::vector<core::DesignPoint> points(n);
  std::vector<core::PointError> errs(n);
  std::vector<char> have(n, 0);
  std::vector<char> failed(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    points[i].label = configs[i].first;
    points[i].config = configs[i].second;
  }

  // Journal restore: completed points are never dispatched again, and their
  // metrics re-render byte-identically (util/json.h round-trip numbers).
  std::vector<std::size_t> pending;
  for (std::size_t i = 0; i < n; ++i) {
    if (journal) {
      const auto it = journal->entries().find(keys[i]);
      if (it != journal->entries().end() &&
          core::parse_design_point_value(it->second, points[i])) {
        have[i] = 1;
        ++outcome.resumed;
        continue;
      }
    }
    pending.push_back(i);
  }

  // Shard: route each pending point on the ring, group per worker (stable
  // shards keep worker caches hot), slice each group into chunks. A point
  // with no usable home right now groups under -1 and is placed at dispatch
  // time like any other chunk.
  Run run;
  {
    std::map<int, std::vector<std::size_t>> by_worker;
    for (const std::size_t i : pending)
      by_worker[pool_.route(util::fnv1a64(keys[i]))].push_back(i);
    const std::size_t chunk_points =
        static_cast<std::size_t>(std::max(1, options_.chunk_points));
    for (const auto& [w, idxs] : by_worker) {
      (void)w;
      for (std::size_t at = 0; at < idxs.size(); at += chunk_points) {
        Chunk c;
        const std::size_t end = std::min(idxs.size(), at + chunk_points);
        c.idx.assign(idxs.begin() + static_cast<std::ptrdiff_t>(at),
                     idxs.begin() + static_cast<std::ptrdiff_t>(end));
        for (const std::size_t i : c.idx) c.labels.push_back(configs[i].first);
        c.body = chunk_request_body(req, model_text, config_ini, c.idx);
        c.hash = util::fnv1a64(keys[c.idx.front()]);
        c.flight = attach_flight(c.body, c.idx.size(), c.owner);
        run.chunks.push_back(std::move(c));
      }
    }
  }

  // Completion: journal first (the on-disk record *is* the crash-safety
  // contract, so a point only reports success once its append stuck), then
  // publish the flight exactly once and drop it from the single-flight map.
  const auto fail_flight = [&](Chunk& c, const std::string& what) {
    {
      std::lock_guard<std::mutex> lk(c.flight->m);
      if (!c.flight->done) {
        c.flight->ok = false;
        c.flight->fail_what = what;
        c.flight->done = true;
      }
    }
    c.flight->cv.notify_all();
    finish_flight(c.body, c.flight);
  };
  const auto complete_flight = [&](Chunk& c, std::vector<Slot> slots) {
    if (journal) {
      for (std::size_t p = 0; p < slots.size(); ++p) {
        if (!slots[p].ok) continue;
        core::DesignPoint dp;
        dp.cycles = slots[p].cycles;
        dp.energy = slots[p].energy;
        dp.utilization = slots[p].utilization;
        try {
          journal->append(keys[c.idx[p]], core::design_point_value_json(dp));
        } catch (const core::SweepJournalError& e) {
          slots[p].ok = false;
          slots[p].error = core::PointError{
              c.labels[p], core::design_point_short_key(keys[c.idx[p]]),
              "journal", e.what()};
        }
      }
    }
    {
      std::lock_guard<std::mutex> lk(c.flight->m);
      if (!c.flight->done) {
        c.flight->ok = true;
        c.flight->slots = std::move(slots);
        c.flight->done = true;
      }
    }
    c.flight->cv.notify_all();
    finish_flight(c.body, c.flight);
  };

  const auto dispatch_chunk = [&](std::size_t ci, bool is_steal) {
    Chunk& c = run.chunks[ci];
    int w = -1;
    {
      std::lock_guard<std::mutex> lk(run.mu);
      if (c.state == ChunkState::Done || c.state == ChunkState::Failed) {
        if (is_steal) c.steal_pending = false;
        return;
      }
      w = pool_.route(c.hash, c.tried);
      // Every usable worker was already tried: a requeue retreads the ring
      // rather than wasting its remaining budget on an empty exclusion set.
      if (w < 0 && !is_steal && !c.tried.empty()) w = pool_.route(c.hash);
      if (w >= 0) {
        c.tried.push_back(w);
        if (!is_steal) {
          c.state = ChunkState::InFlight;
          c.started = Clock::now();
        }
      }
    }

    if (w < 0) {
      if (is_steal) {
        std::lock_guard<std::mutex> lk(run.mu);
        c.steal_pending = false;
        return;
      }
      // The whole fleet is ejected. Burn one requeue, give probation a beat
      // to readmit somebody, and spin again; exhaustion fails the chunk.
      bool exhausted = false;
      {
        std::lock_guard<std::mutex> lk(run.mu);
        if (++c.requeues > options_.max_requeues) {
          c.state = ChunkState::Failed;
          exhausted = true;
        } else {
          c.state = ChunkState::Queued;
        }
      }
      if (exhausted) {
        fail_flight(c, "no usable worker (fleet of " +
                           std::to_string(pool_.member_count()) +
                           " members, none usable)");
        run.cv.notify_all();
        return;
      }
      if (metrics_) metrics_->record_coord_requeue(c.idx.size());
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      {
        std::lock_guard<std::mutex> lk(run.mu);
        run.queue.emplace_back(ci, false);
      }
      run.cv.notify_all();
      return;
    }

    // The chaos seams: "coord.steal" stalls a primary dispatch so the
    // straggler monitor provably fires; "coord.dispatch" fails the send
    // before a socket is ever touched.
    if (!is_steal) util::fault::at("coord.steal");
    const bool injected =
        util::fault::at("coord.dispatch").kind == util::fault::Kind::Errno;

    // By value: the pool's address table grows under membership churn.
    const HostPort addr = pool_.address(static_cast<std::size_t>(w));
    const std::string where = addr.host + ":" + std::to_string(addr.port);
    if (metrics_) {
      metrics_->record_coord_dispatch(c.idx.size());
      metrics_->coord_chunk_started();
    }
    bool ok = false;
    bool fatal = false;
    std::string fail;
    std::vector<Slot> slots;
    if (injected) {
      fail = "worker " + where + ": injected dispatch fault (coord.dispatch)";
    } else {
      try {
        HttpRequest hr;
        hr.method = "POST";
        hr.target = "/v1/sweep";
        hr.headers.emplace_back("Content-Type", "application/json");
        hr.body = c.body;
        RetryPolicy policy;
        policy.max_attempts = std::max(1, options_.dispatch_attempts);
        policy.base_ms = options_.dispatch_base_ms;
        policy.seed = 0x5eedULL ^ c.hash;
        int attempts = 1;
        const HttpResponse resp =
            http_fetch_retry(addr.host, addr.port, hr,
                             options_.dispatch_timeout_ms, policy, &attempts);
        if (metrics_ && attempts > 1)
          metrics_->record_coord_retries(
              static_cast<std::uint64_t>(attempts - 1));
        if (resp.status == 200) {
          if (parse_chunk_response(resp.body, c.labels, slots))
            ok = true;
          else
            fail = "worker " + where + " returned an unparseable sweep body";
        } else if (resp.status >= 400 && resp.status < 500) {
          // The worker is alive and rejected the chunk deterministically:
          // the same bytes cannot fare better elsewhere.
          fatal = true;
          fail = "worker " + where + " rejected the chunk: HTTP " +
                 std::to_string(resp.status);
        } else {
          fail =
              "worker " + where + " answered HTTP " + std::to_string(resp.status);
        }
      } catch (const FetchError& e) {
        fail = "worker " + where + ": " + e.what();
      }
    }
    if (metrics_) metrics_->coord_chunk_finished();
    pool_.report(static_cast<std::size_t>(w), ok || fatal);

    if (ok) {
      // First valid result wins; a steal-race loser lands here with the
      // chunk already Done and discards its copy. The same rule covers
      // membership churn: a chunk dispatched under an older ring epoch is
      // accepted when it lands — the epoch versions routing, not results.
      bool winner = false;
      {
        std::lock_guard<std::mutex> lk(run.mu);
        if (c.state != ChunkState::Done && c.state != ChunkState::Failed) {
          c.state = ChunkState::Done;
          winner = true;
        }
        if (is_steal) c.steal_pending = false;
      }
      if (winner) complete_flight(c, std::move(slots));
      run.cv.notify_all();
      return;
    }
    if (fatal) {
      bool first = false;
      {
        std::lock_guard<std::mutex> lk(run.mu);
        if (c.state != ChunkState::Done && c.state != ChunkState::Failed) {
          c.state = ChunkState::Failed;
          first = true;
        }
        if (is_steal) c.steal_pending = false;
      }
      if (first) fail_flight(c, fail);
      run.cv.notify_all();
      return;
    }
    // Retryable failure: the primary requeues (budget permitting); a failed
    // steal just retires — its primary is still in flight.
    bool requeued = false;
    bool exhausted = false;
    {
      std::lock_guard<std::mutex> lk(run.mu);
      if (is_steal) {
        c.steal_pending = false;
      } else if (c.state == ChunkState::InFlight) {
        if (++c.requeues > options_.max_requeues) {
          c.state = ChunkState::Failed;
          exhausted = true;
        } else {
          c.state = ChunkState::Queued;
          run.queue.emplace_back(ci, false);
          requeued = true;
        }
      }
    }
    if (requeued && metrics_) metrics_->record_coord_requeue(c.idx.size());
    if (exhausted)
      fail_flight(c, fail + " (chunk failed after " +
                         std::to_string(options_.max_requeues) + " requeues)");
    run.cv.notify_all();
  };

  // Dispatcher pool: wide enough to keep every worker busy and to let a
  // steal overtake a stalled primary, bounded so a huge fleet cannot fork
  // a thread herd per request.
  std::size_t owned = 0;
  for (const Chunk& c : run.chunks) owned += c.owner ? 1 : 0;
  std::vector<std::thread> dispatchers;
  if (owned > 0) {
    {
      std::lock_guard<std::mutex> lk(run.mu);
      for (std::size_t ci = 0; ci < run.chunks.size(); ++ci)
        if (run.chunks[ci].owner) run.queue.emplace_back(ci, false);
    }
    const std::size_t width = std::min<std::size_t>(
        std::max<std::size_t>(2, 2 * pool_.size()), 8);
    for (std::size_t t = 0; t < std::min(width, owned + 1); ++t)
      dispatchers.emplace_back([&] {
        for (;;) {
          std::pair<std::size_t, bool> job;
          {
            std::unique_lock<std::mutex> lk(run.mu);
            run.cv.wait(lk, [&] { return run.quit || !run.queue.empty(); });
            if (run.queue.empty()) return;  // quit, and nothing left to run
            job = run.queue.front();
            run.queue.pop_front();
          }
          dispatch_chunk(job.first, job.second);
        }
      });
  }

  // Monitor: poll for completion (waiter chunks finish under another run's
  // dispatchers) and re-dispatch owned stragglers to a different worker.
  const auto straggler =
      std::chrono::milliseconds(std::max(1, options_.straggler_ms));
  for (;;) {
    bool all_done = true;
    for (Chunk& c : run.chunks) {
      std::lock_guard<std::mutex> lk(c.flight->m);
      all_done = all_done && c.flight->done;
    }
    if (all_done) break;
    {
      std::lock_guard<std::mutex> lk(run.mu);
      const Clock::time_point now = Clock::now();
      for (std::size_t ci = 0; ci < run.chunks.size(); ++ci) {
        Chunk& c = run.chunks[ci];
        if (!c.owner || c.state != ChunkState::InFlight || c.steal_pending)
          continue;
        if (now - c.started < straggler) continue;
        if (pool_.route(c.hash, c.tried) < 0) continue;  // nowhere to steal to
        c.steal_pending = true;
        run.queue.emplace_back(ci, true);
        if (metrics_) metrics_->record_coord_steal();
      }
    }
    run.cv.notify_all();
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  {
    std::lock_guard<std::mutex> lk(run.mu);
    run.quit = true;
  }
  run.cv.notify_all();
  for (std::thread& th : dispatchers) th.join();

  // Merge: every chunk's flight is done; slots map back onto global point
  // indices, and a failed flight turns into per-point "dispatch" errors
  // under the same keys the sweep engine itself would have used.
  for (Chunk& c : run.chunks) {
    std::lock_guard<std::mutex> lk(c.flight->m);
    const Flight& f = *c.flight;
    for (std::size_t p = 0; p < c.idx.size(); ++p) {
      const std::size_t i = c.idx[p];
      if (f.ok && f.slots[p].ok) {
        points[i].cycles = f.slots[p].cycles;
        points[i].energy = f.slots[p].energy;
        points[i].utilization = f.slots[p].utilization;
        have[i] = 1;
      } else if (f.ok) {
        errs[i] = f.slots[p].error;
        failed[i] = 1;
      } else {
        errs[i] = core::PointError{c.labels[p],
                                   core::design_point_short_key(keys[i]),
                                   "dispatch", f.fail_what};
        failed[i] = 1;
      }
    }
  }

  for (std::size_t i = 0; i < n; ++i) {
    if (have[i])
      outcome.points.push_back(std::move(points[i]));
    else if (failed[i])
      outcome.errors.push_back(std::move(errs[i]));
  }
  if (stats) {
    stats->points = outcome.points.size();
    stats->point_errors = outcome.errors.size();
    stats->resumed = outcome.resumed;
  }
  std::ostringstream os;
  core::write_sweep_outcome_json(req.knob + " on " + req.base.model_label,
                                 outcome, os);
  return os.str();
}

}  // namespace sqz::serve
