// Health-checked, lease-based worker registry for coordinator mode
// (serve/coordinator.h).
//
// The fleet is *dynamic*: a worker is either a static member (named on the
// coordinator's --workers list at boot; never expires) or a lease-based
// member (self-registered over POST /v1/workers/register with a TTL that
// its heartbeat renews). A lease that is not renewed in time expires and
// the worker departs the ring — exactly as if an operator had deregistered
// it. Every membership change (join, rejoin, deregister, lease expiry)
// bumps the pool's *epoch*, a monotonically increasing version of the ring.
//
// Health is tracked per member through a small state machine fed by two
// signals of equal weight: periodic GET /healthz probes and chunk-dispatch
// outcomes (a failed POST is as strong a death rattle as a failed probe):
//
//   Healthy  --fail-->  Suspect  --(consecutive fails >= threshold)--> Ejected
//   Suspect  --ok-->    Healthy
//   Ejected  --(probation_ms elapsed)--> Probation   (a single trial probe)
//   Probation --ok--> Healthy        --fail--> Ejected (the timer restarts)
//
// Health and membership are orthogonal: ejection keeps a member on the
// books (its arcs stay parked until a probe readmits it), while departure
// (deregister / lease expiry) removes its arcs from the ring entirely. A
// departed worker that registers again rejoins with a fresh state machine.
// The machine itself (WorkerStateMachine) is pure — time is a parameter, no
// threads, no sockets — so tests table-drive the full transition graph, and
// the lease bookkeeping is equally time-parameterized (expire_leases,
// register_worker take now_ms).
//
// Routing is a consistent-hash ring (util/hash.h FNV-1a over
// "host:port#vnode", kVirtualNodes virtual nodes per worker) over the
// *alive* members: a design point's key hashes to the first usable worker
// clockwise, so each worker's simcache/plancache stays hot on a stable
// shard of the design space. Because a member's arc positions depend only
// on its own host:port, membership churn moves only the joining/departing
// worker's arcs — every survivor's shard is untouched, which is what keeps
// fleet-wide cache warmth through rolling restarts. Chunks dispatched under
// an older epoch are still accepted when their results land (first valid
// result wins, as with work stealing): the epoch versions the routing
// table, not the validity of results.
//
// Fault points (util/faultinject.h): "coord.health" fails probes
// deterministically; "coord.lease" force-expires one leased member per shot
// so lease-expiry drills need not wait out a real TTL.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "serve/httpclient.h"

namespace sqz::serve {

class Metrics;

/// Probe cadence and ejection thresholds.
struct ProbePolicy {
  int interval_ms = 500;     ///< Prober pass period.
  int timeout_ms = 2000;     ///< Per-probe HTTP deadline.
  int fail_threshold = 3;    ///< Consecutive failures that eject a worker.
  int probation_ms = 2000;   ///< Ejected -> Probation (trial probe) delay.
};

enum class WorkerHealth { Healthy, Suspect, Ejected, Probation };

const char* worker_health_name(WorkerHealth health);

/// The pure per-worker state machine. Time enters as `now_ms` (any
/// monotonic millisecond clock) so the transition graph is unit-testable
/// without waiting out real probation windows.
class WorkerStateMachine {
 public:
  explicit WorkerStateMachine(const ProbePolicy& policy) : policy_(policy) {}

  WorkerHealth health() const noexcept { return health_; }
  int consecutive_failures() const noexcept { return failures_; }

  /// Dispatchable? Healthy and Suspect take chunks; Ejected and Probation
  /// do not.
  bool usable() const noexcept {
    return health_ == WorkerHealth::Healthy || health_ == WorkerHealth::Suspect;
  }

  /// Should the prober contact this worker now? Healthy/Suspect/Probation:
  /// always. Ejected: only once probation_ms has elapsed — at which point
  /// the machine moves to Probation (a single trial) and answers true.
  bool probe_due(std::int64_t now_ms);

  struct Transition {
    WorkerHealth from = WorkerHealth::Healthy;
    WorkerHealth to = WorkerHealth::Healthy;
    bool ejected = false;  ///< This outcome newly ejected the worker.
  };

  /// Feed one probe (or dispatch) outcome at `now_ms`.
  Transition on_result(bool ok, std::int64_t now_ms);

 private:
  ProbePolicy policy_;
  WorkerHealth health_ = WorkerHealth::Healthy;
  int failures_ = 0;               ///< Consecutive failures observed.
  std::int64_t ejected_at_ms_ = 0; ///< Probation timer origin.
};

/// Alive members by health state, plus departed slots — the /healthz
/// membership block's worker census.
struct MemberCounts {
  std::size_t healthy = 0;
  std::size_t suspect = 0;
  std::size_t ejected = 0;
  std::size_t probation = 0;
  std::size_t departed = 0;  ///< Deregistered or lease-expired slots.
};

/// One row of the lease table (for /healthz and tests).
struct LeaseInfo {
  std::string address;       ///< "host:port".
  WorkerHealth health = WorkerHealth::Healthy;
  bool alive = true;         ///< False once departed (dereg / expiry).
  std::int64_t lease_ms = 0; ///< TTL; 0 = static member, never expires.
  std::int64_t age_ms = 0;   ///< Since the last register/renewal.
};

/// The thread-safe registry + epoch-versioned ring, with an optional
/// background prober (which also runs lease expiry).
class WorkerPool {
 public:
  static constexpr int kVirtualNodes = 64;
  /// Floor on accepted lease TTLs: anything shorter would let ordinary
  /// scheduling jitter expire a healthy worker between heartbeats.
  static constexpr std::int64_t kMinLeaseMs = 100;

  /// `workers` become static members (no lease). `metrics` (may be null)
  /// receives workers_up/epoch gauge updates and ejection/expiry counts.
  WorkerPool(std::vector<HostPort> workers, const ProbePolicy& policy,
             Metrics* metrics = nullptr);
  ~WorkerPool();  ///< Calls stop().

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Spawn the background prober thread (probes + lease expiry). Idempotent
  /// with stop().
  void start();
  void stop();

  /// Total member slots ever created, departed included. Slots are never
  /// reused for a different address, so a slot index held by an in-flight
  /// dispatch stays valid across any amount of membership churn.
  std::size_t size() const;
  /// The slot's endpoint, by value: the slot vector grows under membership
  /// churn, so references must not escape the lock.
  HostPort address(std::size_t worker) const;
  WorkerHealth health(std::size_t worker) const;
  std::size_t usable_count() const;   ///< Alive and Healthy/Suspect.
  std::size_t member_count() const;   ///< Alive members (any health).
  std::uint64_t epoch() const;        ///< Ring version; bumps on every change.

  struct Registration {
    std::uint64_t epoch = 0;    ///< Epoch after the operation.
    bool newly_added = false;   ///< New member or rejoin (vs. a renewal).
    std::int64_t lease_ms = 0;  ///< The granted (clamped) TTL.
  };

  /// Register a new member, re-admit a departed one, or renew an existing
  /// lease (a renewal also feeds a health success — a heartbeat is proof of
  /// life). `lease_ms` <= 0 grants a static membership that never expires;
  /// positive TTLs are floored at kMinLeaseMs.
  Registration register_worker(const HostPort& addr, std::int64_t lease_ms,
                               std::int64_t now_ms);

  /// Graceful departure: remove the member's arcs from the ring. Returns
  /// false when the address is unknown or already departed.
  bool deregister_worker(const HostPort& addr, std::int64_t now_ms,
                         std::uint64_t* epoch_out = nullptr);

  /// Depart every leased member whose TTL has lapsed at `now_ms`; returns
  /// the departed addresses ("host:port"). The "coord.lease" fault point
  /// force-expires one leased member per armed shot, so chaos drills need
  /// not wait out a real TTL. Called by the prober each pass; tests call it
  /// directly with a synthetic clock.
  std::vector<std::string> expire_leases(std::int64_t now_ms);

  /// Hook invoked (with no pool lock held) after each nonempty batch of
  /// lease expirations — the coordinator journals sqzm1 expiry events from
  /// it. Set before start(); not synchronized against the prober otherwise.
  void set_expiry_callback(
      std::function<void(const std::vector<std::string>&)> cb) {
    expiry_cb_ = std::move(cb);
  }

  MemberCounts member_counts() const;
  std::vector<LeaseInfo> lease_table(std::int64_t now_ms) const;

  /// Consistent-hash route: the first usable worker clockwise from `hash`,
  /// skipping workers listed in `exclude`. Returns -1 when no usable
  /// worker remains outside the exclusion set.
  int route(std::uint64_t hash, const std::vector<int>& exclude = {}) const;

  /// Feed one dispatch outcome for `worker` into its state machine.
  void report(std::size_t worker, bool ok);

  /// One synchronous probe pass over every due alive worker (the prober
  /// thread calls this each interval; tests call it directly for
  /// determinism).
  void probe_all(std::int64_t now_ms);

  /// Milliseconds on the steady clock — the `now_ms` the pool itself uses.
  static std::int64_t now_ms();

 private:
  struct Member {
    bool alive = true;
    std::int64_t lease_ms = 0;       ///< 0 = static, never expires.
    std::int64_t renewed_at_ms = 0;  ///< Last register/renewal.
  };

  bool probe_worker(std::size_t worker) const;  ///< HTTP probe, fault-gated.
  void apply_result_locked(std::size_t worker, bool ok, std::int64_t now);
  std::size_t usable_count_locked() const;
  std::size_t add_member_locked(const HostPort& addr, std::int64_t lease_ms,
                                std::int64_t now_ms);
  void rebuild_ring_locked();   ///< Arcs of the alive members only.
  void bump_epoch_locked();     ///< Also publishes the epoch gauge.
  void publish_gauges_locked();
  void prober_loop();

  ProbePolicy policy_;
  Metrics* metrics_;
  std::function<void(const std::vector<std::string>&)> expiry_cb_;

  struct RingEntry {
    std::uint64_t hash;
    int worker;
  };

  mutable std::mutex mu_;
  std::vector<HostPort> addrs_;               ///< Guarded by mu_; grows only.
  std::vector<WorkerStateMachine> machines_;  ///< Guarded by mu_.
  std::vector<Member> members_;               ///< Guarded by mu_.
  std::unordered_map<std::string, std::size_t> index_;  ///< "host:port"->slot.
  std::vector<RingEntry> ring_;  ///< Sorted by hash; rebuilt on churn.
  std::uint64_t epoch_ = 1;      ///< Guarded by mu_.

  std::thread prober_;
  std::mutex stop_mu_;
  std::condition_variable stop_cv_;
  bool stopping_ = false;  ///< Guarded by stop_mu_.
};

}  // namespace sqz::serve
