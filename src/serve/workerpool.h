// Health-checked worker registry for coordinator mode (serve/coordinator.h).
//
// A static fleet of stock sqzserved workers is tracked through a small
// health state machine fed by two signals of equal weight: periodic
// GET /healthz probes and chunk-dispatch outcomes (a failed POST is as
// strong a death rattle as a failed probe):
//
//   Healthy  --fail-->  Suspect  --(consecutive fails >= threshold)--> Ejected
//   Suspect  --ok-->    Healthy
//   Ejected  --(probation_ms elapsed)--> Probation   (a single trial probe)
//   Probation --ok--> Healthy        --fail--> Ejected (the timer restarts)
//
// Healthy and Suspect workers are dispatchable ("usable"); Ejected and
// Probation workers receive no chunks until a probe readmits them, so a
// flapping worker cannot churn the ring. The machine itself
// (WorkerStateMachine) is pure — time is a parameter, no threads, no
// sockets — so tests table-drive the full transition graph.
//
// Routing is a consistent-hash ring (util/hash.h FNV-1a over
// "host:port#vnode", kVirtualNodes virtual nodes per worker): a design
// point's key hashes to the first usable worker clockwise, so each
// worker's simcache/plancache stays hot on a stable shard of the design
// space, and the death of one worker redistributes only its own arcs.
//
// The "coord.health" fault point (util/faultinject.h) fails probes
// deterministically for chaos drills.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/httpclient.h"

namespace sqz::serve {

class Metrics;

/// Probe cadence and ejection thresholds.
struct ProbePolicy {
  int interval_ms = 500;     ///< Prober pass period.
  int timeout_ms = 2000;     ///< Per-probe HTTP deadline.
  int fail_threshold = 3;    ///< Consecutive failures that eject a worker.
  int probation_ms = 2000;   ///< Ejected -> Probation (trial probe) delay.
};

enum class WorkerHealth { Healthy, Suspect, Ejected, Probation };

const char* worker_health_name(WorkerHealth health);

/// The pure per-worker state machine. Time enters as `now_ms` (any
/// monotonic millisecond clock) so the transition graph is unit-testable
/// without waiting out real probation windows.
class WorkerStateMachine {
 public:
  explicit WorkerStateMachine(const ProbePolicy& policy) : policy_(policy) {}

  WorkerHealth health() const noexcept { return health_; }
  int consecutive_failures() const noexcept { return failures_; }

  /// Dispatchable? Healthy and Suspect take chunks; Ejected and Probation
  /// do not.
  bool usable() const noexcept {
    return health_ == WorkerHealth::Healthy || health_ == WorkerHealth::Suspect;
  }

  /// Should the prober contact this worker now? Healthy/Suspect/Probation:
  /// always. Ejected: only once probation_ms has elapsed — at which point
  /// the machine moves to Probation (a single trial) and answers true.
  bool probe_due(std::int64_t now_ms);

  struct Transition {
    WorkerHealth from = WorkerHealth::Healthy;
    WorkerHealth to = WorkerHealth::Healthy;
    bool ejected = false;  ///< This outcome newly ejected the worker.
  };

  /// Feed one probe (or dispatch) outcome at `now_ms`.
  Transition on_result(bool ok, std::int64_t now_ms);

 private:
  ProbePolicy policy_;
  WorkerHealth health_ = WorkerHealth::Healthy;
  int failures_ = 0;               ///< Consecutive failures observed.
  std::int64_t ejected_at_ms_ = 0; ///< Probation timer origin.
};

/// The thread-safe registry + ring, with an optional background prober.
class WorkerPool {
 public:
  static constexpr int kVirtualNodes = 64;

  /// `metrics` (may be null) receives workers_up gauge updates and
  /// ejection counts.
  WorkerPool(std::vector<HostPort> workers, const ProbePolicy& policy,
             Metrics* metrics = nullptr);
  ~WorkerPool();  ///< Calls stop().

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Spawn the background prober thread. Idempotent with stop().
  void start();
  void stop();

  std::size_t size() const noexcept { return addrs_.size(); }
  const HostPort& address(std::size_t worker) const { return addrs_[worker]; }
  WorkerHealth health(std::size_t worker) const;
  std::size_t usable_count() const;

  /// Consistent-hash route: the first usable worker clockwise from `hash`,
  /// skipping workers listed in `exclude`. Returns -1 when no usable
  /// worker remains outside the exclusion set.
  int route(std::uint64_t hash, const std::vector<int>& exclude = {}) const;

  /// Feed one dispatch outcome for `worker` into its state machine.
  void report(std::size_t worker, bool ok);

  /// One synchronous probe pass over every due worker (the prober thread
  /// calls this each interval; tests call it directly for determinism).
  void probe_all(std::int64_t now_ms);

  /// Milliseconds on the steady clock — the `now_ms` the pool itself uses.
  static std::int64_t now_ms();

 private:
  bool probe_worker(std::size_t worker) const;  ///< HTTP probe, fault-gated.
  void apply_result_locked(std::size_t worker, bool ok, std::int64_t now);
  std::size_t usable_count_locked() const;
  void prober_loop();

  std::vector<HostPort> addrs_;
  ProbePolicy policy_;
  Metrics* metrics_;

  struct RingEntry {
    std::uint64_t hash;
    int worker;
  };
  std::vector<RingEntry> ring_;  ///< Sorted by hash; immutable after ctor.

  mutable std::mutex mu_;
  std::vector<WorkerStateMachine> machines_;  ///< Guarded by mu_.

  std::thread prober_;
  std::mutex stop_mu_;
  std::condition_variable stop_cv_;
  bool stopping_ = false;  ///< Guarded by stop_mu_.
};

}  // namespace sqz::serve
