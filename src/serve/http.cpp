#include "serve/http.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "util/rng.h"

namespace sqz::serve {

namespace {

bool iequals(const std::string& a, const std::string& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i])))
      return false;
  return true;
}

const std::string* find_header(
    const std::vector<std::pair<std::string, std::string>>& headers,
    const std::string& name) {
  for (const auto& [k, v] : headers)
    if (iequals(k, name)) return &v;
  return nullptr;
}

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t')) --e;
  return s.substr(b, e - b);
}

// Parse the header block starting after the start line. Returns NeedMore
// until the blank line arrives, then leaves `pos` at the first body byte.
ParseStatus parse_headers(
    const std::string& buffer, std::size_t& pos,
    std::vector<std::pair<std::string, std::string>>& headers,
    std::string* error, const ParseLimits& limits) {
  const std::size_t block_start = pos;
  for (;;) {
    // The cap covers the whole block, terminated lines included, so a slow
    // drip of small headers cannot grow the buffer unboundedly either.
    const std::size_t eol = buffer.find("\r\n", pos);
    const std::size_t block_end = eol == std::string::npos ? buffer.size() : eol;
    if (block_end - block_start > limits.max_header_bytes) {
      if (error) *error = "header block too large";
      return ParseStatus::TooLarge;
    }
    if (eol == std::string::npos) return ParseStatus::NeedMore;
    if (eol == pos) {  // blank line: end of headers
      pos = eol + 2;
      return ParseStatus::Ok;
    }
    const std::string line = buffer.substr(pos, eol - pos);
    const std::size_t colon = line.find(':');
    if (colon == std::string::npos || colon == 0) {
      if (error) *error = "malformed header line: " + line;
      return ParseStatus::Error;
    }
    const std::string name = trim(line.substr(0, colon));
    // A name with embedded whitespace or control bytes is a smuggling
    // attempt (request splitting), not a sloppy client. Reject it.
    for (const char c : name) {
      if (c == ' ' || c == '\t' ||
          static_cast<unsigned char>(c) < 0x21 ||
          static_cast<unsigned char>(c) == 0x7f) {
        if (error) *error = "malformed header name: " + name;
        return ParseStatus::Error;
      }
    }
    headers.emplace_back(name, trim(line.substr(colon + 1)));
    pos = eol + 2;
  }
}

// Content-Length framing shared by request and response parsing. Returns Ok
// once `header_end + length` bytes are buffered.
ParseStatus parse_body(
    const std::string& buffer, std::size_t body_start,
    const std::vector<std::pair<std::string, std::string>>& headers,
    std::string& body, std::size_t& consumed, std::string* error,
    const ParseLimits& limits) {
  std::size_t length = 0;
  if (const std::string* cl = find_header(headers, "Content-Length")) {
    // Strictly digits: no sign, no whitespace, no second opinion a proxy
    // might frame differently (CL smuggling).
    if (cl->empty() ||
        cl->find_first_not_of("0123456789") != std::string::npos) {
      if (error) *error = "bad Content-Length: " + *cl;
      return ParseStatus::Error;
    }
    errno = 0;
    const unsigned long long v = std::strtoull(cl->c_str(), nullptr, 10);
    if (errno == ERANGE || v > limits.max_body_bytes) {
      if (error)
        *error = "body of " + *cl + " bytes exceeds the " +
                 std::to_string(limits.max_body_bytes) + "-byte limit";
      return ParseStatus::TooLarge;
    }
    length = static_cast<std::size_t>(v);
  }
  if (find_header(headers, "Transfer-Encoding")) {
    if (error) *error = "Transfer-Encoding not supported";
    return ParseStatus::Error;
  }
  if (buffer.size() - body_start < length) return ParseStatus::NeedMore;
  body = buffer.substr(body_start, length);
  consumed = body_start + length;
  return ParseStatus::Ok;
}

const char* reason_for(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 413: return "Payload Too Large";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Error";
  }
}

void append_headers(
    std::string& out,
    const std::vector<std::pair<std::string, std::string>>& headers,
    std::size_t body_size, bool force_content_length) {
  bool have_length = false;
  for (const auto& [k, v] : headers) {
    out += k;
    out += ": ";
    out += v;
    out += "\r\n";
    have_length |= iequals(k, "Content-Length");
  }
  if (!have_length && (body_size > 0 || force_content_length)) {
    out += "Content-Length: " + std::to_string(body_size) + "\r\n";
  }
  out += "\r\n";
}

}  // namespace

const std::string* HttpRequest::header(const std::string& name) const {
  return find_header(headers, name);
}

bool HttpRequest::wants_close() const {
  if (const std::string* c = header("Connection")) {
    if (iequals(*c, "close")) return true;
    if (iequals(*c, "keep-alive")) return false;
  }
  return version == "HTTP/1.0";
}

std::string HttpRequest::serialize() const {
  std::string out = method + " " + target + " " + version + "\r\n";
  append_headers(out, headers, body.size(), method == "POST");
  out += body;
  return out;
}

const std::string* HttpResponse::header(const std::string& name) const {
  return find_header(headers, name);
}

std::string HttpResponse::serialize() const {
  std::string out =
      "HTTP/1.1 " + std::to_string(status) + " " + reason + "\r\n";
  append_headers(out, headers, body.size(), /*force_content_length=*/true);
  out += body;
  return out;
}

HttpResponse make_response(int status, const std::string& content_type,
                           std::string body) {
  HttpResponse r;
  r.status = status;
  r.reason = reason_for(status);
  r.headers.emplace_back("Content-Type", content_type);
  r.body = std::move(body);
  return r;
}

ParseStatus parse_http_request(const std::string& buffer, HttpRequest& out,
                               std::size_t& consumed, std::string* error,
                               const ParseLimits& limits) {
  const std::size_t eol = buffer.find("\r\n");
  if (eol == std::string::npos) {
    if (buffer.size() > limits.max_header_bytes) {
      if (error) *error = "request line too long";
      return ParseStatus::TooLarge;
    }
    return ParseStatus::NeedMore;
  }
  const std::string line = buffer.substr(0, eol);
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 = sp1 == std::string::npos ? std::string::npos
                                                   : line.find(' ', sp1 + 1);
  if (sp2 == std::string::npos || line.find(' ', sp2 + 1) != std::string::npos) {
    if (error) *error = "malformed request line: " + line;
    return ParseStatus::Error;
  }
  HttpRequest req;
  req.method = line.substr(0, sp1);
  req.target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  req.version = line.substr(sp2 + 1);
  if (req.version.rfind("HTTP/1.", 0) != 0) {
    if (error) *error = "unsupported protocol: " + req.version;
    return ParseStatus::Error;
  }
  // A bare CR anywhere in the start line is a response-splitting probe.
  if (line.find('\r') != std::string::npos) {
    if (error) *error = "stray CR in request line";
    return ParseStatus::Error;
  }
  std::size_t pos = eol + 2;
  const ParseStatus hs = parse_headers(buffer, pos, req.headers, error, limits);
  if (hs != ParseStatus::Ok) return hs;
  const ParseStatus bs =
      parse_body(buffer, pos, req.headers, req.body, consumed, error, limits);
  if (bs != ParseStatus::Ok) return bs;
  out = std::move(req);
  return ParseStatus::Ok;
}

ParseStatus parse_http_response(const std::string& buffer, HttpResponse& out,
                                std::size_t& consumed, std::string* error,
                                const ParseLimits& limits) {
  const std::size_t eol = buffer.find("\r\n");
  if (eol == std::string::npos) {
    if (buffer.size() > limits.max_header_bytes) {
      if (error) *error = "status line too long";
      return ParseStatus::TooLarge;
    }
    return ParseStatus::NeedMore;
  }
  const std::string line = buffer.substr(0, eol);
  if (line.rfind("HTTP/1.", 0) != 0) {
    if (error) *error = "malformed status line: " + line;
    return ParseStatus::Error;
  }
  const std::size_t sp1 = line.find(' ');
  if (sp1 == std::string::npos || line.size() < sp1 + 4) {
    if (error) *error = "malformed status line: " + line;
    return ParseStatus::Error;
  }
  HttpResponse resp;
  resp.status = 0;
  for (std::size_t i = sp1 + 1; i < sp1 + 4; ++i) {
    if (!std::isdigit(static_cast<unsigned char>(line[i]))) {
      if (error) *error = "malformed status code: " + line;
      return ParseStatus::Error;
    }
    resp.status = resp.status * 10 + (line[i] - '0');
  }
  const std::size_t sp2 = line.find(' ', sp1 + 1);
  resp.reason = sp2 == std::string::npos ? "" : line.substr(sp2 + 1);
  std::size_t pos = eol + 2;
  const ParseStatus hs = parse_headers(buffer, pos, resp.headers, error, limits);
  if (hs != ParseStatus::Ok) return hs;
  const ParseStatus bs =
      parse_body(buffer, pos, resp.headers, resp.body, consumed, error, limits);
  if (bs != ParseStatus::Ok) return bs;
  out = std::move(resp);
  return ParseStatus::Ok;
}

namespace {

struct Fd {
  int fd = -1;
  ~Fd() {
    if (fd >= 0) ::close(fd);
  }
};

[[noreturn]] void throw_fetch(FetchError::Kind kind, const std::string& what) {
  throw FetchError(kind, what + ": " + std::strerror(errno));
}

}  // namespace

HttpResponse http_fetch(const std::string& host, int port, HttpRequest req,
                        int timeout_ms) {
  if (port <= 0 || port > 65535)
    throw FetchError(FetchError::Kind::Connect,
                     "http_fetch: bad port " + std::to_string(port));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  const std::string ip = host == "localhost" ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, ip.c_str(), &addr.sin_addr) != 1)
    throw FetchError(FetchError::Kind::Connect,
                     "http_fetch: cannot resolve '" + host +
                         "' (use a numeric IPv4 address or localhost)");

  Fd sock;
  sock.fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (sock.fd < 0) throw_fetch(FetchError::Kind::Connect, "http_fetch: socket");
  if (::connect(sock.fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0)
    throw_fetch(FetchError::Kind::Connect,
                "http_fetch: connect to " + host + ":" + std::to_string(port));

  if (!req.header("Host"))
    req.headers.emplace_back("Host", host + ":" + std::to_string(port));
  if (!req.header("Connection")) req.headers.emplace_back("Connection", "close");

  const std::string wire = req.serialize();
  std::size_t sent = 0;
  while (sent < wire.size()) {
    const ssize_t n = ::send(sock.fd, wire.data() + sent, wire.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_fetch(FetchError::Kind::Io, "http_fetch: send");
    }
    sent += static_cast<std::size_t>(n);
  }

  std::string buffer;
  char chunk[16384];
  for (;;) {
    pollfd p{sock.fd, POLLIN, 0};
    const int pr = ::poll(&p, 1, timeout_ms);
    if (pr < 0) throw_fetch(FetchError::Kind::Io, "http_fetch: poll");
    if (pr == 0)
      throw FetchError(FetchError::Kind::Timeout,
                       "http_fetch: no response within " +
                           std::to_string(timeout_ms) + " ms");
    const ssize_t n = ::recv(sock.fd, chunk, sizeof(chunk), 0);
    if (n < 0) throw_fetch(FetchError::Kind::Io, "http_fetch: recv");
    if (n == 0)
      throw FetchError(FetchError::Kind::Io,
                       "http_fetch: connection closed early");
    buffer.append(chunk, static_cast<std::size_t>(n));

    HttpResponse resp;
    std::size_t consumed = 0;
    std::string err;
    switch (parse_http_response(buffer, resp, consumed, &err)) {
      case ParseStatus::Ok: return resp;
      case ParseStatus::NeedMore: break;
      case ParseStatus::Error:
      case ParseStatus::TooLarge:
        throw FetchError(FetchError::Kind::Parse,
                         "http_fetch: bad response: " + err);
    }
  }
}

HttpResponse http_fetch_retry(const std::string& host, int port,
                              const HttpRequest& req, int timeout_ms,
                              const RetryPolicy& policy, int* attempts_out) {
  const int max_attempts = std::max(1, policy.max_attempts);
  const int base_ms = std::max(1, policy.base_ms);
  const int cap_ms = std::max(base_ms, policy.cap_ms);
  util::Rng rng(policy.seed);
  int prev_sleep_ms = base_ms;

  // Decorrelated jitter (Brooker): each sleep is uniform over
  // [base, 3 * previous sleep], clamped to [base, cap]. Spreads retry storms
  // without the lockstep thundering herd of plain exponential backoff.
  const auto next_sleep = [&](int at_least_ms) {
    const std::int64_t hi =
        std::min<std::int64_t>(cap_ms, 3 * std::int64_t{prev_sleep_ms});
    int sleep_ms = static_cast<int>(rng.next_in(base_ms, hi));
    sleep_ms = std::max(sleep_ms, std::min(at_least_ms, cap_ms));
    prev_sleep_ms = sleep_ms;
    return sleep_ms;
  };

  for (int attempt = 1;; ++attempt) {
    if (attempts_out) *attempts_out = attempt;
    int retry_after_ms = 0;
    try {
      HttpResponse resp = http_fetch(host, port, req, timeout_ms);
      if (resp.status != 503 || attempt >= max_attempts) return resp;
      // Shed by a saturated server: honor Retry-After (seconds) as a floor,
      // still capped so tests and tight deadlines stay fast.
      if (const std::string* ra = resp.header("Retry-After")) {
        errno = 0;
        char* end = nullptr;
        const long sec = std::strtol(ra->c_str(), &end, 10);
        if (end != ra->c_str() && *end == '\0' && errno == 0 && sec > 0)
          retry_after_ms = static_cast<int>(
              std::min<long>(sec * 1000L, cap_ms));
      }
    } catch (const FetchError& e) {
      if (!e.retryable() || attempt >= max_attempts) throw;
    }
    std::this_thread::sleep_for(
        std::chrono::milliseconds(next_sleep(retry_after_ms)));
  }
}

}  // namespace sqz::serve
