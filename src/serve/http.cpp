#include "serve/http.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>

namespace sqz::serve {

namespace {

bool iequals(const std::string& a, const std::string& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i])))
      return false;
  return true;
}

const std::string* find_header(
    const std::vector<std::pair<std::string, std::string>>& headers,
    const std::string& name) {
  for (const auto& [k, v] : headers)
    if (iequals(k, name)) return &v;
  return nullptr;
}

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t')) --e;
  return s.substr(b, e - b);
}

// Parse the header block starting after the start line. Returns NeedMore
// until the blank line arrives, then leaves `pos` at the first body byte.
ParseStatus parse_headers(
    const std::string& buffer, std::size_t& pos,
    std::vector<std::pair<std::string, std::string>>& headers,
    std::string* error, const ParseLimits& limits) {
  const std::size_t block_start = pos;
  for (;;) {
    // The cap covers the whole block, terminated lines included, so a slow
    // drip of small headers cannot grow the buffer unboundedly either.
    const std::size_t eol = buffer.find("\r\n", pos);
    const std::size_t block_end = eol == std::string::npos ? buffer.size() : eol;
    if (block_end - block_start > limits.max_header_bytes) {
      if (error) *error = "header block too large";
      return ParseStatus::TooLarge;
    }
    if (eol == std::string::npos) return ParseStatus::NeedMore;
    if (eol == pos) {  // blank line: end of headers
      pos = eol + 2;
      return ParseStatus::Ok;
    }
    const std::string line = buffer.substr(pos, eol - pos);
    const std::size_t colon = line.find(':');
    if (colon == std::string::npos || colon == 0) {
      if (error) *error = "malformed header line: " + line;
      return ParseStatus::Error;
    }
    const std::string name = trim(line.substr(0, colon));
    // A name with embedded whitespace or control bytes is a smuggling
    // attempt (request splitting), not a sloppy client. Reject it.
    for (const char c : name) {
      if (c == ' ' || c == '\t' ||
          static_cast<unsigned char>(c) < 0x21 ||
          static_cast<unsigned char>(c) == 0x7f) {
        if (error) *error = "malformed header name: " + name;
        return ParseStatus::Error;
      }
    }
    headers.emplace_back(name, trim(line.substr(colon + 1)));
    pos = eol + 2;
  }
}

// Content-Length framing shared by request and response parsing. Returns Ok
// once `header_end + length` bytes are buffered.
ParseStatus parse_body(
    const std::string& buffer, std::size_t body_start,
    const std::vector<std::pair<std::string, std::string>>& headers,
    std::string& body, std::size_t& consumed, std::string* error,
    const ParseLimits& limits) {
  std::size_t length = 0;
  if (const std::string* cl = find_header(headers, "Content-Length")) {
    // Strictly digits: no sign, no whitespace, no second opinion a proxy
    // might frame differently (CL smuggling).
    if (cl->empty() ||
        cl->find_first_not_of("0123456789") != std::string::npos) {
      if (error) *error = "bad Content-Length: " + *cl;
      return ParseStatus::Error;
    }
    errno = 0;
    const unsigned long long v = std::strtoull(cl->c_str(), nullptr, 10);
    if (errno == ERANGE || v > limits.max_body_bytes) {
      if (error)
        *error = "body of " + *cl + " bytes exceeds the " +
                 std::to_string(limits.max_body_bytes) + "-byte limit";
      return ParseStatus::TooLarge;
    }
    length = static_cast<std::size_t>(v);
  }
  if (find_header(headers, "Transfer-Encoding")) {
    if (error) *error = "Transfer-Encoding not supported";
    return ParseStatus::Error;
  }
  if (buffer.size() - body_start < length) return ParseStatus::NeedMore;
  body = buffer.substr(body_start, length);
  consumed = body_start + length;
  return ParseStatus::Ok;
}

const char* reason_for(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 413: return "Payload Too Large";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Error";
  }
}

void append_headers(
    std::string& out,
    const std::vector<std::pair<std::string, std::string>>& headers,
    std::size_t body_size, bool force_content_length) {
  bool have_length = false;
  for (const auto& [k, v] : headers) {
    out += k;
    out += ": ";
    out += v;
    out += "\r\n";
    have_length |= iequals(k, "Content-Length");
  }
  if (!have_length && (body_size > 0 || force_content_length)) {
    out += "Content-Length: " + std::to_string(body_size) + "\r\n";
  }
  out += "\r\n";
}

}  // namespace

const std::string* HttpRequest::header(const std::string& name) const {
  return find_header(headers, name);
}

bool HttpRequest::wants_close() const {
  if (const std::string* c = header("Connection")) {
    if (iequals(*c, "close")) return true;
    if (iequals(*c, "keep-alive")) return false;
  }
  return version == "HTTP/1.0";
}

std::string HttpRequest::serialize() const {
  std::string out = method + " " + target + " " + version + "\r\n";
  append_headers(out, headers, body.size(), method == "POST");
  out += body;
  return out;
}

const std::string* HttpResponse::header(const std::string& name) const {
  return find_header(headers, name);
}

std::string HttpResponse::serialize() const {
  std::string out =
      "HTTP/1.1 " + std::to_string(status) + " " + reason + "\r\n";
  append_headers(out, headers, body.size(), /*force_content_length=*/true);
  out += body;
  return out;
}

HttpResponse make_response(int status, const std::string& content_type,
                           std::string body) {
  HttpResponse r;
  r.status = status;
  r.reason = reason_for(status);
  r.headers.emplace_back("Content-Type", content_type);
  r.body = std::move(body);
  return r;
}

ParseStatus parse_http_request(const std::string& buffer, HttpRequest& out,
                               std::size_t& consumed, std::string* error,
                               const ParseLimits& limits) {
  const std::size_t eol = buffer.find("\r\n");
  if (eol == std::string::npos) {
    if (buffer.size() > limits.max_header_bytes) {
      if (error) *error = "request line too long";
      return ParseStatus::TooLarge;
    }
    return ParseStatus::NeedMore;
  }
  const std::string line = buffer.substr(0, eol);
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 = sp1 == std::string::npos ? std::string::npos
                                                   : line.find(' ', sp1 + 1);
  if (sp2 == std::string::npos || line.find(' ', sp2 + 1) != std::string::npos) {
    if (error) *error = "malformed request line: " + line;
    return ParseStatus::Error;
  }
  HttpRequest req;
  req.method = line.substr(0, sp1);
  req.target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  req.version = line.substr(sp2 + 1);
  if (req.version.rfind("HTTP/1.", 0) != 0) {
    if (error) *error = "unsupported protocol: " + req.version;
    return ParseStatus::Error;
  }
  // A bare CR anywhere in the start line is a response-splitting probe.
  if (line.find('\r') != std::string::npos) {
    if (error) *error = "stray CR in request line";
    return ParseStatus::Error;
  }
  std::size_t pos = eol + 2;
  const ParseStatus hs = parse_headers(buffer, pos, req.headers, error, limits);
  if (hs != ParseStatus::Ok) return hs;
  const ParseStatus bs =
      parse_body(buffer, pos, req.headers, req.body, consumed, error, limits);
  if (bs != ParseStatus::Ok) return bs;
  out = std::move(req);
  return ParseStatus::Ok;
}

ParseStatus parse_http_response(const std::string& buffer, HttpResponse& out,
                                std::size_t& consumed, std::string* error,
                                const ParseLimits& limits) {
  const std::size_t eol = buffer.find("\r\n");
  if (eol == std::string::npos) {
    if (buffer.size() > limits.max_header_bytes) {
      if (error) *error = "status line too long";
      return ParseStatus::TooLarge;
    }
    return ParseStatus::NeedMore;
  }
  const std::string line = buffer.substr(0, eol);
  if (line.rfind("HTTP/1.", 0) != 0) {
    if (error) *error = "malformed status line: " + line;
    return ParseStatus::Error;
  }
  const std::size_t sp1 = line.find(' ');
  if (sp1 == std::string::npos || line.size() < sp1 + 4) {
    if (error) *error = "malformed status line: " + line;
    return ParseStatus::Error;
  }
  HttpResponse resp;
  resp.status = 0;
  for (std::size_t i = sp1 + 1; i < sp1 + 4; ++i) {
    if (!std::isdigit(static_cast<unsigned char>(line[i]))) {
      if (error) *error = "malformed status code: " + line;
      return ParseStatus::Error;
    }
    resp.status = resp.status * 10 + (line[i] - '0');
  }
  const std::size_t sp2 = line.find(' ', sp1 + 1);
  resp.reason = sp2 == std::string::npos ? "" : line.substr(sp2 + 1);
  std::size_t pos = eol + 2;
  const ParseStatus hs = parse_headers(buffer, pos, resp.headers, error, limits);
  if (hs != ParseStatus::Ok) return hs;
  const ParseStatus bs =
      parse_body(buffer, pos, resp.headers, resp.body, consumed, error, limits);
  if (bs != ParseStatus::Ok) return bs;
  out = std::move(resp);
  return ParseStatus::Ok;
}

}  // namespace sqz::serve
