// The sqzserved daemon core: a POSIX-socket HTTP/1.1 server exposing the
// simulator as a long-running service (see ARCHITECTURE.md "Serving").
//
// Endpoints:
//   POST /v1/simulate  JSON request -> core/report run-report JSON,
//                      byte-identical to `sqzsim --json`
//   POST /v1/sweep     JSON request -> core/dse sweep-dump JSON
//   GET  /healthz      readiness JSON: in-flight/queued requests, cache tier
//                      status, journal recovery, coordinator fleet health.
//                      The bare contract is unchanged: 200 means alive, so
//                      probers that only check the status keep working.
//   GET  /metrics      Prometheus text (serve/metrics.h)
//
// With ServerOptions::coordinator.workers non-empty the server runs in
// coordinator mode (serve/coordinator.h): /v1/sweep is sharded across the
// worker fleet instead of simulating locally; /v1/simulate stays local.
//
// One accept thread; each connection is dispatched onto a server-owned
// dispatch pool (see ServerOptions::dispatch_jobs), where the full
// request/response loop runs. The dispatch pool is deliberately separate
// from the process-wide simulation pool: connection handlers are I/O-bound
// (a keep-alive connection parks in poll between requests), so their thread
// count must track max_connections, not core count — on a one-core host the
// global pool has no workers at all and would run handlers inline on the
// accept thread, making keep-alive starve the listener. Simulations
// themselves still fan out on util::ThreadPool::global() (`--jobs`), so
// report provenance — and therefore byte-identity with the local CLI — is
// unchanged. Keep-alive is honored, so a client can issue a design-space
// iteration over one connection. Results flow through the content-addressed
// SimCache; repeated design points never re-simulate.
//
// Fault tolerance (ARCHITECTURE.md "Fault tolerance"): every connection
// carries poll-based deadlines — an idle keep-alive connection is reaped
// after idle_timeout_ms, a request that fails to arrive (or a response that
// fails to drain) within request_timeout_ms is aborted with 408 — bodies
// over max_body_bytes get 413, and connections beyond max_connections are
// shed with 503 + Retry-After instead of queueing. The accept loop backs
// off on EMFILE/ENFILE instead of busy-looping. All of it is counted on
// /metrics and exercised through util/faultinject sites "serve.accept",
// "serve.recv", and "serve.send".
//
// stop() is a graceful drain: the listener closes first, in-flight
// connections finish (idle keep-alive connections are closed at the next
// poll tick), then stop() returns.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "core/sweepjournal.h"
#include "serve/api.h"
#include "serve/coordinator.h"
#include "serve/http.h"
#include "serve/metrics.h"
#include "serve/plancache.h"
#include "serve/simcache.h"
#include "util/threadpool.h"

namespace sqz::serve {

struct ServerOptions {
  std::string host = "127.0.0.1";  ///< Bind address (numeric IPv4).
  int port = 8080;                 ///< 0 = ephemeral (see Server::port()).
  std::size_t cache_entries = 1024;
  std::string cache_dir;           ///< Empty = memory tier only.

  /// Compiled-plan cache (serve/plancache.h): result-cache misses replay a
  /// cached plan instead of re-running the compile search. 0 disables it.
  std::size_t plan_cache_entries = 256;
  std::string plan_cache_dir;      ///< Empty = memory tier only.

  /// Non-empty: journal every /v1/sweep design point to
  /// DIR/sweep.sqzj (core/sweepjournal.h) and serve already-journaled
  /// points without re-simulating — crash safety for server-side sweeps.
  std::string sweep_journal_dir;

  /// Deadline for reading one complete request (from its first byte) and,
  /// separately, for draining one response to the peer. Expiry answers 408
  /// (when still possible) and closes the connection.
  int request_timeout_ms = 30000;

  /// Keep-alive connections with no buffered bytes are closed after this
  /// long and counted in sqzserved_idle_closed_total.
  int idle_timeout_ms = 30000;

  /// Request bodies over this cap are refused with 413.
  std::size_t max_body_bytes = 64 * 1024 * 1024;

  /// Concurrent-connection cap; excess connections are shed with
  /// 503 + Retry-After instead of queueing. 0 disables shedding.
  int max_connections = 256;

  /// Connection-handler threads. 0 sizes automatically: max_connections
  /// clamped to [2, 8] (8 when shedding is disabled). Connections beyond
  /// the pool width queue until a handler frees up or the shed cap fires.
  int dispatch_jobs = 0;

  /// Coordinator mode (serve/coordinator.h): with a non-empty worker list,
  /// /v1/sweep is sharded across the fleet instead of simulating locally.
  CoordinatorOptions coordinator;
};

class Server {
 public:
  explicit Server(const ServerOptions& options);
  ~Server();  ///< Calls stop().

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind, listen, and spawn the accept thread. Throws std::runtime_error
  /// when the address cannot be bound.
  void start();

  /// Graceful shutdown: stop accepting, drain in-flight connections, join.
  /// Idempotent.
  void stop();

  bool running() const { return accepting_.load(); }

  /// The bound port (useful with port 0 in ServerOptions).
  int port() const { return port_; }

  SimCache& cache() { return cache_; }
  /// Null when ServerOptions::plan_cache_entries is 0.
  PlanCache* plan_cache() { return plan_cache_.get(); }
  /// Null unless coordinator mode is on (ServerOptions::coordinator).
  Coordinator* coordinator() { return coordinator_.get(); }
  const Metrics& metrics() const { return metrics_; }

 private:
  void accept_loop();
  void shed_connection(int fd);
  void handle_connection(int fd);
  HttpResponse route(const HttpRequest& request);

  ServerOptions options_;
  SimCache cache_;
  std::unique_ptr<PlanCache> plan_cache_;  ///< May be null (disabled).
  Metrics metrics_;
  std::unique_ptr<core::SweepJournal> sweep_journal_;  ///< May be null.
  std::unique_ptr<Coordinator> coordinator_;           ///< May be null.
  SimService service_;

  int listen_fd_ = -1;
  int port_ = 0;
  std::thread accept_thread_;
  std::unique_ptr<util::ThreadPool> dispatch_pool_;  ///< Lives start()..stop().
  std::atomic<bool> accepting_{false};
  std::atomic<bool> stopping_{false};

  std::mutex mu_;
  std::condition_variable drained_cv_;
  int active_connections_ = 0;  ///< Guarded by mu_; drives the drain wait.
};

}  // namespace sqz::serve
