// The sqzserved daemon core: a POSIX-socket HTTP/1.1 server exposing the
// simulator as a long-running service (see ARCHITECTURE.md "Serving").
//
// Endpoints:
//   POST /v1/simulate  JSON request -> core/report run-report JSON,
//                      byte-identical to `sqzsim --json`
//   POST /v1/sweep     JSON request -> core/dse sweep-dump JSON
//   POST /v1/workers/register    dynamic membership: admit/renew a worker
//   POST /v1/workers/deregister  lease (coordinator mode only; 404
//                                elsewhere, 503 on a passive standby)
//   GET  /healthz      readiness JSON: in-flight/queued requests, cache tier
//                      status, journal recovery, coordinator fleet health,
//                      and (in coordinator/standby/joined roles) a
//                      membership block. The bare contract is unchanged:
//                      200 means alive, so probers that only check the
//                      status keep working.
//   GET  /metrics      Prometheus text (serve/metrics.h)
//
// With ServerOptions::coordinator.workers non-empty (or
// accept_registrations set) the server runs in coordinator mode
// (serve/coordinator.h): /v1/sweep is sharded across the worker fleet
// instead of simulating locally; /v1/simulate stays local. With
// ServerOptions::standby_of set it boots as a *passive standby* of another
// coordinator and promotes itself on the primary's death (see
// ServerOptions::standby_of). With ServerOptions::joiner endpoints it is a
// worker that self-registers into a coordinator's fleet (serve/joiner.h).
//
// One accept thread; each connection is dispatched onto a server-owned
// dispatch pool (see ServerOptions::dispatch_jobs), where the full
// request/response loop runs. The dispatch pool is deliberately separate
// from the process-wide simulation pool: connection handlers are I/O-bound
// (a keep-alive connection parks in poll between requests), so their thread
// count must track max_connections, not core count — on a one-core host the
// global pool has no workers at all and would run handlers inline on the
// accept thread, making keep-alive starve the listener. Simulations
// themselves still fan out on util::ThreadPool::global() (`--jobs`), so
// report provenance — and therefore byte-identity with the local CLI — is
// unchanged. Keep-alive is honored, so a client can issue a design-space
// iteration over one connection. Results flow through the content-addressed
// SimCache; repeated design points never re-simulate.
//
// Fault tolerance (ARCHITECTURE.md "Fault tolerance"): every connection
// carries poll-based deadlines — an idle keep-alive connection is reaped
// after idle_timeout_ms, a request that fails to arrive (or a response that
// fails to drain) within request_timeout_ms is aborted with 408 — bodies
// over max_body_bytes get 413, and connections beyond max_connections are
// shed with 503 + Retry-After instead of queueing. The accept loop backs
// off on EMFILE/ENFILE instead of busy-looping. All of it is counted on
// /metrics and exercised through util/faultinject sites "serve.accept",
// "serve.recv", and "serve.send".
//
// stop() is a graceful drain: the listener closes first, in-flight
// connections finish (idle keep-alive connections are closed at the next
// poll tick), then stop() returns.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "core/sweepjournal.h"
#include "serve/api.h"
#include "serve/coordinator.h"
#include "serve/http.h"
#include "serve/joiner.h"
#include "serve/metrics.h"
#include "serve/plancache.h"
#include "serve/simcache.h"
#include "util/threadpool.h"

namespace sqz::serve {

struct ServerOptions {
  std::string host = "127.0.0.1";  ///< Bind address (numeric IPv4).
  int port = 8080;                 ///< 0 = ephemeral (see Server::port()).
  std::size_t cache_entries = 1024;
  std::string cache_dir;           ///< Empty = memory tier only.

  /// Compiled-plan cache (serve/plancache.h): result-cache misses replay a
  /// cached plan instead of re-running the compile search. 0 disables it.
  std::size_t plan_cache_entries = 256;
  std::string plan_cache_dir;      ///< Empty = memory tier only.

  /// Non-empty: journal every /v1/sweep design point to
  /// DIR/sweep.sqzj (core/sweepjournal.h) and serve already-journaled
  /// points without re-simulating — crash safety for server-side sweeps.
  std::string sweep_journal_dir;

  /// Deadline for reading one complete request (from its first byte) and,
  /// separately, for draining one response to the peer. Expiry answers 408
  /// (when still possible) and closes the connection.
  int request_timeout_ms = 30000;

  /// Keep-alive connections with no buffered bytes are closed after this
  /// long and counted in sqzserved_idle_closed_total.
  int idle_timeout_ms = 30000;

  /// Request bodies over this cap are refused with 413.
  std::size_t max_body_bytes = 64 * 1024 * 1024;

  /// Concurrent-connection cap; excess connections are shed with
  /// 503 + Retry-After instead of queueing. 0 disables shedding.
  int max_connections = 256;

  /// Connection-handler threads. 0 sizes automatically: max_connections
  /// clamped to [2, 8] (8 when shedding is disabled). Connections beyond
  /// the pool width queue until a handler frees up or the shed cap fires.
  int dispatch_jobs = 0;

  /// Coordinator mode (serve/coordinator.h): with a non-empty worker list
  /// (or accept_registrations for a fleet built purely from --join
  /// registrations), /v1/sweep is sharded across the fleet instead of
  /// simulating locally.
  CoordinatorOptions coordinator;

  /// Worker-side dynamic membership (serve/joiner.h): with a non-empty
  /// endpoint list this server registers itself with a coordinator on
  /// start() and heartbeat-renews its lease; stop() deregisters first
  /// (graceful drain). advertise_host/advertise_port are filled from the
  /// bound address at start().
  JoinerOptions joiner;

  /// Standby coordinator (ARCHITECTURE.md "Dynamic membership & coordinator
  /// HA"): non-empty = the primary coordinator's "host:port". The server
  /// boots passive — /v1/simulate, /v1/sweep, and registrations answer 503
  /// — watching the primary's /healthz and tailing the shared
  /// sweep_journal_dir (required). When the primary misses probes for
  /// longer than standby_takeover_ms, the standby opens the journal,
  /// replays points and membership, and promotes itself to an active
  /// coordinator; the resumed sweep is byte-identical. Promotion is fenced
  /// by the journal's exclusive writer lock (core/sweepjournal.h): a
  /// primary that is alive but partitioned still holds it, so the standby
  /// refuses to promote rather than split-brain the shared journal.
  std::string standby_of;
  std::int64_t standby_takeover_ms = 5000;
};

class Server {
 public:
  explicit Server(const ServerOptions& options);
  ~Server();  ///< Calls stop().

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind, listen, and spawn the accept thread. Throws std::runtime_error
  /// when the address cannot be bound.
  void start();

  /// Graceful shutdown: stop accepting, drain in-flight connections, join.
  /// Idempotent.
  void stop();

  bool running() const { return accepting_.load(); }

  /// The bound port (useful with port 0 in ServerOptions).
  int port() const { return port_; }

  SimCache& cache() { return cache_; }
  /// Null when ServerOptions::plan_cache_entries is 0.
  PlanCache* plan_cache() { return plan_cache_.get(); }
  /// Null unless coordinator mode is on (ServerOptions::coordinator) — on a
  /// standby, null until promotion.
  Coordinator* coordinator() { return coordinator_.get(); }
  const Metrics& metrics() const { return metrics_; }

  /// Standby role: true from construction until takeover promotes this
  /// server to an active coordinator.
  bool standby() const { return role_.load() == Role::Standby; }

 private:
  /// Coordinator lifecycle role. Normal servers (workers, static
  /// coordinators) are Active from the start; --standby-of servers begin
  /// Standby and flip to Active exactly once, at takeover.
  enum class Role { Active, Standby };

  void accept_loop();
  void shed_connection(int fd);
  void handle_connection(int fd);
  HttpResponse route(const HttpRequest& request);
  void standby_loop();  ///< Watch the primary; promote on lease expiry.

  /// Standby -> Active: lock + open the journal, build the fleet. False =
  /// refused (the primary still holds the journal's writer lock — alive
  /// behind a partition — or the journal dir failed to open); the caller
  /// keeps standing by.
  bool promote();

  ServerOptions options_;
  SimCache cache_;
  std::unique_ptr<PlanCache> plan_cache_;  ///< May be null (disabled).
  Metrics metrics_;
  std::unique_ptr<core::SweepJournal> sweep_journal_;  ///< May be null.
  std::unique_ptr<Coordinator> coordinator_;           ///< May be null.
  std::unique_ptr<Joiner> joiner_;                     ///< May be null.
  SimService service_;

  int listen_fd_ = -1;
  int port_ = 0;
  std::thread accept_thread_;
  std::unique_ptr<util::ThreadPool> dispatch_pool_;  ///< Lives start()..stop().
  std::atomic<bool> accepting_{false};
  std::atomic<bool> stopping_{false};

  /// Standby machinery. service_/sweep_journal_/coordinator_ are written by
  /// promote() and only read by handlers that have already observed
  /// Role::Active (the release store below is the publication barrier).
  std::atomic<Role> role_{Role::Active};
  std::thread standby_thread_;
  std::mutex standby_mu_;
  std::condition_variable standby_cv_;
  bool standby_stop_ = false;  ///< Guarded by standby_mu_.

  std::mutex mu_;
  std::condition_variable drained_cv_;
  int active_connections_ = 0;  ///< Guarded by mu_; drives the drain wait.
};

}  // namespace sqz::serve
