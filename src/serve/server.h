// The sqzserved daemon core: a POSIX-socket HTTP/1.1 server exposing the
// simulator as a long-running service (see ARCHITECTURE.md "Serving").
//
// Endpoints:
//   POST /v1/simulate  JSON request -> core/report run-report JSON,
//                      byte-identical to `sqzsim --json`
//   POST /v1/sweep     JSON request -> core/dse sweep-dump JSON
//   GET  /healthz      liveness probe, "ok\n"
//   GET  /metrics      Prometheus text (serve/metrics.h)
//
// One accept thread; each connection is dispatched onto the process-wide
// util::ThreadPool (`--jobs` sizing applies), where the full
// request/response loop runs. Keep-alive is honored, so a client can issue
// a design-space iteration over one connection. Results flow through the
// content-addressed SimCache; repeated design points never re-simulate.
// stop() is a graceful drain: the listener closes first, in-flight
// connections finish (idle keep-alive connections are closed at the next
// poll tick), then stop() returns.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <string>
#include <thread>

#include "serve/api.h"
#include "serve/http.h"
#include "serve/metrics.h"
#include "serve/simcache.h"

namespace sqz::serve {

struct ServerOptions {
  std::string host = "127.0.0.1";  ///< Bind address (numeric IPv4).
  int port = 8080;                 ///< 0 = ephemeral (see Server::port()).
  std::size_t cache_entries = 1024;
  std::string cache_dir;           ///< Empty = memory tier only.
};

class Server {
 public:
  explicit Server(const ServerOptions& options);
  ~Server();  ///< Calls stop().

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind, listen, and spawn the accept thread. Throws std::runtime_error
  /// when the address cannot be bound.
  void start();

  /// Graceful shutdown: stop accepting, drain in-flight connections, join.
  /// Idempotent.
  void stop();

  bool running() const { return accepting_.load(); }

  /// The bound port (useful with port 0 in ServerOptions).
  int port() const { return port_; }

  SimCache& cache() { return cache_; }
  const Metrics& metrics() const { return metrics_; }

 private:
  void accept_loop();
  void handle_connection(int fd);
  HttpResponse route(const HttpRequest& request);

  ServerOptions options_;
  SimCache cache_;
  Metrics metrics_;
  SimService service_;

  int listen_fd_ = -1;
  int port_ = 0;
  std::thread accept_thread_;
  std::atomic<bool> accepting_{false};
  std::atomic<bool> stopping_{false};

  std::mutex mu_;
  std::condition_variable drained_cv_;
  int active_connections_ = 0;  ///< Guarded by mu_; drives the drain wait.
};

}  // namespace sqz::serve
