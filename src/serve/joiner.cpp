#include "serve/joiner.h"

#include <algorithm>
#include <chrono>
#include <sstream>

#include "serve/metrics.h"
#include "util/hash.h"
#include "util/json.h"
#include "util/json_parse.h"
#include "util/logging.h"

namespace sqz::serve {

namespace {

/// xorshift64* — deterministic per-worker jitter stream, seeded off the
/// advertised address so a fleet booting in lockstep does not stampede one
/// coordinator with synchronized retries.
std::uint64_t next_rand(std::uint64_t& state) {
  state ^= state >> 12;
  state ^= state << 25;
  state ^= state >> 27;
  return state * 0x2545f4914f6cdd1dULL;
}

}  // namespace

Joiner::Joiner(const JoinerOptions& options, Metrics* metrics)
    : options_(options), metrics_(metrics),
      granted_lease_ms_(options.lease_ms) {}

Joiner::~Joiner() { stop(); }

void Joiner::start() {
  if (options_.endpoints.empty() || heartbeat_.joinable()) return;
  {
    std::lock_guard<std::mutex> lock(stop_mu_);
    stopping_ = false;
  }
  heartbeat_ = std::thread([this] { heartbeat_loop(); });
}

void Joiner::stop() {
  {
    std::lock_guard<std::mutex> lock(stop_mu_);
    stopping_ = true;
  }
  stop_cv_.notify_all();
  if (heartbeat_.joinable()) heartbeat_.join();
}

std::string Joiner::current_endpoint() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (options_.endpoints.empty()) return "";
  const HostPort& ep = options_.endpoints[endpoint_];
  return ep.host + ":" + std::to_string(ep.port);
}

bool Joiner::post_registration(const HostPort& coordinator, bool deregister) {
  std::ostringstream os;
  util::JsonWriter w(os, /*indent=*/0);
  w.begin_object();
  w.member("host", options_.advertise_host);
  w.member("port", options_.advertise_port);
  if (!deregister) w.member("lease_ms", options_.lease_ms);
  w.end_object();
  try {
    HttpRequest req;
    req.method = "POST";
    req.target = deregister ? "/v1/workers/deregister" : "/v1/workers/register";
    req.headers.emplace_back("Content-Type", "application/json");
    req.body = os.str();
    const HttpResponse resp = http_fetch(coordinator.host, coordinator.port,
                                         std::move(req), options_.timeout_ms);
    if (resp.status != 200) return false;
    if (!deregister) {
      // The coordinator may clamp or substitute the requested TTL; the
      // renewal cadence must come from what it actually granted, or the
      // lease can lapse between heartbeats. An unparseable body falls back
      // to the last known grant.
      try {
        const std::int64_t granted =
            util::parse_json(resp.body).at("lease_ms").as_int();
        if (granted > 0) granted_lease_ms_.store(granted);
      } catch (const std::exception&) {
      }
    }
    return true;
  } catch (const FetchError&) {
    return false;
  }
}

void Joiner::heartbeat_loop() {
  std::uint64_t rng =
      util::fnv1a64(options_.advertise_host + ":" +
                    std::to_string(options_.advertise_port)) |
      1;
  int backoff_ms = options_.retry_base_ms;
  for (;;) {
    std::size_t ep;
    {
      std::lock_guard<std::mutex> lock(mu_);
      ep = endpoint_;
    }
    const bool ok = post_registration(options_.endpoints[ep],
                                      /*deregister=*/false);
    std::int64_t sleep_ms;
    if (ok) {
      if (!joined_.exchange(true)) {
        if (metrics_) metrics_->record_worker_joined();
        SQZ_LOG(Info) << "joiner: registered with "
                      << options_.endpoints[ep].host << ":"
                      << options_.endpoints[ep].port << " (granted lease "
                      << granted_lease_ms_.load() << " ms)";
      }
      backoff_ms = options_.retry_base_ms;
      // Renew at a third of the *granted* TTL: two heartbeats can be lost
      // before the lease lapses.
      sleep_ms = std::max<std::int64_t>(1, granted_lease_ms_.load() / 3);
    } else {
      if (joined_.exchange(false))
        SQZ_LOG(Warn) << "joiner: lost coordinator "
                      << options_.endpoints[ep].host << ":"
                      << options_.endpoints[ep].port << "; retrying";
      {
        // Rotate to the next endpoint (a standby, typically) so a dead
        // primary does not monopolize the retry budget.
        std::lock_guard<std::mutex> lock(mu_);
        endpoint_ = (endpoint_ + 1) % options_.endpoints.size();
      }
      // Decorrelated jitter: uniform in [base, backoff], then widen.
      const std::int64_t span =
          std::max<std::int64_t>(1, backoff_ms - options_.retry_base_ms + 1);
      sleep_ms = options_.retry_base_ms +
                 static_cast<std::int64_t>(next_rand(rng) % span);
      backoff_ms = std::min(backoff_ms * 2, options_.retry_cap_ms);
    }
    std::unique_lock<std::mutex> lock(stop_mu_);
    if (stop_cv_.wait_for(lock, std::chrono::milliseconds(sleep_ms),
                          [this] { return stopping_; }))
      return;
  }
}

void Joiner::drain() {
  if (drained_.exchange(true)) return;
  stop();
  if (!joined_.load()) return;
  std::size_t ep;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ep = endpoint_;
  }
  if (post_registration(options_.endpoints[ep], /*deregister=*/true)) {
    if (metrics_) metrics_->record_worker_drain();
    SQZ_LOG(Info) << "joiner: deregistered from "
                  << options_.endpoints[ep].host << ":"
                  << options_.endpoints[ep].port << " (graceful drain)";
  }
  joined_.store(false);
}

}  // namespace sqz::serve
