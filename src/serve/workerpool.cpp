#include "serve/workerpool.h"

#include <algorithm>
#include <chrono>

#include "serve/metrics.h"
#include "util/faultinject.h"
#include "util/hash.h"

namespace sqz::serve {

namespace {

std::string addr_key(const HostPort& addr) {
  return addr.host + ":" + std::to_string(addr.port);
}

}  // namespace

const char* worker_health_name(WorkerHealth health) {
  switch (health) {
    case WorkerHealth::Healthy: return "healthy";
    case WorkerHealth::Suspect: return "suspect";
    case WorkerHealth::Ejected: return "ejected";
    case WorkerHealth::Probation: return "probation";
  }
  return "?";
}

bool WorkerStateMachine::probe_due(std::int64_t now_ms) {
  if (health_ != WorkerHealth::Ejected) return true;
  if (now_ms - ejected_at_ms_ < policy_.probation_ms) return false;
  health_ = WorkerHealth::Probation;
  return true;
}

WorkerStateMachine::Transition WorkerStateMachine::on_result(
    bool ok, std::int64_t now_ms) {
  Transition t;
  t.from = health_;
  if (ok) {
    failures_ = 0;
    // Any success readmits: a Suspect recovers, a Probation trial passes.
    // A success observed while Ejected (a straggling in-flight dispatch
    // that finally landed) readmits too — the worker evidently lives.
    health_ = WorkerHealth::Healthy;
  } else {
    ++failures_;
    if (health_ == WorkerHealth::Probation || failures_ >= policy_.fail_threshold) {
      // A failed trial (or the last straw) ejects; the probation timer
      // restarts so a dead worker is retried ever after at probation_ms
      // cadence, never faster.
      t.ejected = health_ != WorkerHealth::Ejected;
      health_ = WorkerHealth::Ejected;
      ejected_at_ms_ = now_ms;
      failures_ = 0;
    } else if (health_ == WorkerHealth::Healthy) {
      health_ = WorkerHealth::Suspect;
    }
  }
  t.to = health_;
  return t;
}

WorkerPool::WorkerPool(std::vector<HostPort> workers,
                       const ProbePolicy& policy, Metrics* metrics)
    : policy_(policy), metrics_(metrics) {
  const std::int64_t now = now_ms();
  std::lock_guard<std::mutex> lock(mu_);
  for (HostPort& w : workers) add_member_locked(w, /*lease_ms=*/0, now);
  rebuild_ring_locked();
  publish_gauges_locked();
  if (metrics_) metrics_->set_coord_epoch(epoch_);
}

WorkerPool::~WorkerPool() { stop(); }

void WorkerPool::start() {
  if (prober_.joinable()) return;
  {
    std::lock_guard<std::mutex> lock(stop_mu_);
    stopping_ = false;
  }
  prober_ = std::thread([this] { prober_loop(); });
}

void WorkerPool::stop() {
  {
    std::lock_guard<std::mutex> lock(stop_mu_);
    stopping_ = true;
  }
  stop_cv_.notify_all();
  if (prober_.joinable()) prober_.join();
}

std::int64_t WorkerPool::now_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::size_t WorkerPool::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return addrs_.size();
}

HostPort WorkerPool::address(std::size_t worker) const {
  std::lock_guard<std::mutex> lock(mu_);
  return addrs_[worker];
}

WorkerHealth WorkerPool::health(std::size_t worker) const {
  std::lock_guard<std::mutex> lock(mu_);
  return machines_[worker].health();
}

std::size_t WorkerPool::usable_count_locked() const {
  std::size_t n = 0;
  for (std::size_t w = 0; w < machines_.size(); ++w)
    n += (members_[w].alive && machines_[w].usable()) ? 1 : 0;
  return n;
}

std::size_t WorkerPool::usable_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return usable_count_locked();
}

std::size_t WorkerPool::member_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const Member& m : members_) n += m.alive ? 1 : 0;
  return n;
}

std::uint64_t WorkerPool::epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return epoch_;
}

std::size_t WorkerPool::add_member_locked(const HostPort& addr,
                                          std::int64_t lease_ms,
                                          std::int64_t now_ms) {
  const std::size_t w = addrs_.size();
  addrs_.push_back(addr);
  machines_.emplace_back(policy_);
  members_.push_back(Member{true, lease_ms, now_ms});
  index_[addr_key(addr)] = w;
  return w;
}

void WorkerPool::rebuild_ring_locked() {
  ring_.clear();
  for (std::size_t w = 0; w < addrs_.size(); ++w) {
    if (!members_[w].alive) continue;
    const std::string base = addr_key(addrs_[w]) + "#";
    for (int v = 0; v < kVirtualNodes; ++v)
      ring_.push_back({util::fnv1a64(base + std::to_string(v)),
                       static_cast<int>(w)});
  }
  std::sort(ring_.begin(), ring_.end(), [](const RingEntry& a,
                                           const RingEntry& b) {
    return a.hash != b.hash ? a.hash < b.hash : a.worker < b.worker;
  });
}

void WorkerPool::bump_epoch_locked() {
  ++epoch_;
  if (metrics_) metrics_->set_coord_epoch(epoch_);
}

void WorkerPool::publish_gauges_locked() {
  if (metrics_) metrics_->set_coord_workers_up(usable_count_locked());
}

WorkerPool::Registration WorkerPool::register_worker(const HostPort& addr,
                                                     std::int64_t lease_ms,
                                                     std::int64_t now_ms) {
  if (lease_ms < 0) lease_ms = 0;
  if (lease_ms > 0 && lease_ms < kMinLeaseMs) lease_ms = kMinLeaseMs;
  Registration r;
  r.lease_ms = lease_ms;
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(addr_key(addr));
  if (it == index_.end()) {
    add_member_locked(addr, lease_ms, now_ms);
    r.newly_added = true;
    rebuild_ring_locked();
    bump_epoch_locked();
  } else {
    const std::size_t w = it->second;
    Member& m = members_[w];
    m.lease_ms = lease_ms;
    m.renewed_at_ms = now_ms;
    if (!m.alive) {
      // Rejoin after a drain or expiry: fresh state machine (old health
      // evidence is stale), arcs back on the ring, new epoch.
      m.alive = true;
      machines_[w] = WorkerStateMachine(policy_);
      r.newly_added = true;
      rebuild_ring_locked();
      bump_epoch_locked();
    } else {
      // Renewal. A heartbeat is proof of life: feed a success so a Suspect
      // or Probation member readmits without waiting for the next probe.
      machines_[w].on_result(true, now_ms);
    }
  }
  publish_gauges_locked();
  r.epoch = epoch_;
  return r;
}

bool WorkerPool::deregister_worker(const HostPort& addr, std::int64_t now_ms,
                                   std::uint64_t* epoch_out) {
  (void)now_ms;
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(addr_key(addr));
  if (it == index_.end() || !members_[it->second].alive) return false;
  members_[it->second].alive = false;
  rebuild_ring_locked();
  bump_epoch_locked();
  publish_gauges_locked();
  if (epoch_out) *epoch_out = epoch_;
  return true;
}

std::vector<std::string> WorkerPool::expire_leases(std::int64_t now_ms) {
  std::vector<std::string> expired;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // "coord.lease" fault point: each armed shot force-expires the first
    // alive leased member whose TTL has *not* lapsed, so expiry drills run
    // at test speed instead of waiting out a real lease window.
    bool force_one = util::fault::enabled() &&
                     util::fault::at("coord.lease").kind ==
                         util::fault::Kind::Errno;
    for (std::size_t w = 0; w < members_.size(); ++w) {
      Member& m = members_[w];
      if (!m.alive || m.lease_ms == 0) continue;
      const bool lapsed = now_ms - m.renewed_at_ms > m.lease_ms;
      if (!lapsed) {
        if (!force_one) continue;
        force_one = false;
      }
      m.alive = false;
      expired.push_back(addr_key(addrs_[w]));
    }
    if (!expired.empty()) {
      rebuild_ring_locked();
      bump_epoch_locked();
      if (metrics_)
        for (std::size_t i = 0; i < expired.size(); ++i)
          metrics_->record_coord_lease_expiration();
      publish_gauges_locked();
    }
  }
  if (!expired.empty() && expiry_cb_) expiry_cb_(expired);
  return expired;
}

MemberCounts WorkerPool::member_counts() const {
  std::lock_guard<std::mutex> lock(mu_);
  MemberCounts c;
  for (std::size_t w = 0; w < members_.size(); ++w) {
    if (!members_[w].alive) {
      ++c.departed;
      continue;
    }
    switch (machines_[w].health()) {
      case WorkerHealth::Healthy: ++c.healthy; break;
      case WorkerHealth::Suspect: ++c.suspect; break;
      case WorkerHealth::Ejected: ++c.ejected; break;
      case WorkerHealth::Probation: ++c.probation; break;
    }
  }
  return c;
}

std::vector<LeaseInfo> WorkerPool::lease_table(std::int64_t now_ms) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<LeaseInfo> table;
  table.reserve(members_.size());
  for (std::size_t w = 0; w < members_.size(); ++w) {
    LeaseInfo info;
    info.address = addr_key(addrs_[w]);
    info.health = machines_[w].health();
    info.alive = members_[w].alive;
    info.lease_ms = members_[w].lease_ms;
    info.age_ms = now_ms - members_[w].renewed_at_ms;
    table.push_back(std::move(info));
  }
  return table;
}

int WorkerPool::route(std::uint64_t hash,
                      const std::vector<int>& exclude) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.empty()) return -1;
  // First ring entry clockwise from `hash`, then walk; each distinct worker
  // is considered at most once, so the scan is bounded even when every arc
  // belongs to unusable workers.
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), hash,
      [](const RingEntry& e, std::uint64_t h) { return e.hash < h; });
  std::vector<char> seen(addrs_.size(), 0);
  std::size_t considered = 0;
  for (std::size_t step = 0;
       step < ring_.size() && considered < addrs_.size(); ++step, ++it) {
    if (it == ring_.end()) it = ring_.begin();
    const int w = it->worker;
    if (seen[w]) continue;
    seen[w] = 1;
    ++considered;
    if (!members_[w].alive || !machines_[w].usable()) continue;
    if (std::find(exclude.begin(), exclude.end(), w) != exclude.end())
      continue;
    return w;
  }
  return -1;
}

void WorkerPool::apply_result_locked(std::size_t worker, bool ok,
                                     std::int64_t now) {
  const WorkerStateMachine::Transition t = machines_[worker].on_result(ok, now);
  if (metrics_) {
    if (t.ejected && members_[worker].alive) metrics_->record_coord_ejection();
    metrics_->set_coord_workers_up(usable_count_locked());
  }
}

void WorkerPool::report(std::size_t worker, bool ok) {
  std::lock_guard<std::mutex> lock(mu_);
  apply_result_locked(worker, ok, now_ms());
}

bool WorkerPool::probe_worker(std::size_t worker) const {
  const util::fault::Action a = util::fault::at("coord.health");
  if (a.kind == util::fault::Kind::Errno) return false;
  const HostPort addr = address(worker);
  try {
    HttpRequest req;
    req.method = "GET";
    req.target = "/healthz";
    return http_fetch(addr.host, addr.port, std::move(req),
                      policy_.timeout_ms)
               .status == 200;
  } catch (const FetchError&) {
    return false;
  }
}

void WorkerPool::probe_all(std::int64_t now_ms) {
  // Collect the due set under the lock, probe without it (each probe is a
  // blocking HTTP exchange), then feed outcomes back in. Departed members
  // are not probed — their slots stay only so in-flight indices hold.
  std::vector<std::size_t> due;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (std::size_t w = 0; w < machines_.size(); ++w)
      if (members_[w].alive && machines_[w].probe_due(now_ms))
        due.push_back(w);
  }
  for (const std::size_t w : due) {
    const bool ok = probe_worker(w);
    std::lock_guard<std::mutex> lock(mu_);
    if (members_[w].alive) apply_result_locked(w, ok, WorkerPool::now_ms());
  }
}

void WorkerPool::prober_loop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(stop_mu_);
      if (stop_cv_.wait_for(lock,
                            std::chrono::milliseconds(policy_.interval_ms),
                            [this] { return stopping_; }))
        return;
    }
    probe_all(now_ms());
    expire_leases(now_ms());
  }
}

}  // namespace sqz::serve
