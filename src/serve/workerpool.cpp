#include "serve/workerpool.h"

#include <algorithm>
#include <chrono>

#include "serve/metrics.h"
#include "util/faultinject.h"
#include "util/hash.h"

namespace sqz::serve {

const char* worker_health_name(WorkerHealth health) {
  switch (health) {
    case WorkerHealth::Healthy: return "healthy";
    case WorkerHealth::Suspect: return "suspect";
    case WorkerHealth::Ejected: return "ejected";
    case WorkerHealth::Probation: return "probation";
  }
  return "?";
}

bool WorkerStateMachine::probe_due(std::int64_t now_ms) {
  if (health_ != WorkerHealth::Ejected) return true;
  if (now_ms - ejected_at_ms_ < policy_.probation_ms) return false;
  health_ = WorkerHealth::Probation;
  return true;
}

WorkerStateMachine::Transition WorkerStateMachine::on_result(
    bool ok, std::int64_t now_ms) {
  Transition t;
  t.from = health_;
  if (ok) {
    failures_ = 0;
    // Any success readmits: a Suspect recovers, a Probation trial passes.
    // A success observed while Ejected (a straggling in-flight dispatch
    // that finally landed) readmits too — the worker evidently lives.
    health_ = WorkerHealth::Healthy;
  } else {
    ++failures_;
    if (health_ == WorkerHealth::Probation || failures_ >= policy_.fail_threshold) {
      // A failed trial (or the last straw) ejects; the probation timer
      // restarts so a dead worker is retried ever after at probation_ms
      // cadence, never faster.
      t.ejected = health_ != WorkerHealth::Ejected;
      health_ = WorkerHealth::Ejected;
      ejected_at_ms_ = now_ms;
      failures_ = 0;
    } else if (health_ == WorkerHealth::Healthy) {
      health_ = WorkerHealth::Suspect;
    }
  }
  t.to = health_;
  return t;
}

WorkerPool::WorkerPool(std::vector<HostPort> workers,
                       const ProbePolicy& policy, Metrics* metrics)
    : addrs_(std::move(workers)), policy_(policy), metrics_(metrics) {
  machines_.assign(addrs_.size(), WorkerStateMachine(policy_));
  ring_.reserve(addrs_.size() * kVirtualNodes);
  for (std::size_t w = 0; w < addrs_.size(); ++w) {
    const std::string base =
        addrs_[w].host + ":" + std::to_string(addrs_[w].port) + "#";
    for (int v = 0; v < kVirtualNodes; ++v)
      ring_.push_back({util::fnv1a64(base + std::to_string(v)),
                       static_cast<int>(w)});
  }
  std::sort(ring_.begin(), ring_.end(), [](const RingEntry& a,
                                           const RingEntry& b) {
    return a.hash != b.hash ? a.hash < b.hash : a.worker < b.worker;
  });
  if (metrics_) metrics_->set_coord_workers_up(addrs_.size());
}

WorkerPool::~WorkerPool() { stop(); }

void WorkerPool::start() {
  if (prober_.joinable()) return;
  {
    std::lock_guard<std::mutex> lock(stop_mu_);
    stopping_ = false;
  }
  prober_ = std::thread([this] { prober_loop(); });
}

void WorkerPool::stop() {
  {
    std::lock_guard<std::mutex> lock(stop_mu_);
    stopping_ = true;
  }
  stop_cv_.notify_all();
  if (prober_.joinable()) prober_.join();
}

std::int64_t WorkerPool::now_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

WorkerHealth WorkerPool::health(std::size_t worker) const {
  std::lock_guard<std::mutex> lock(mu_);
  return machines_[worker].health();
}

std::size_t WorkerPool::usable_count_locked() const {
  std::size_t n = 0;
  for (const WorkerStateMachine& m : machines_) n += m.usable() ? 1 : 0;
  return n;
}

std::size_t WorkerPool::usable_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return usable_count_locked();
}

int WorkerPool::route(std::uint64_t hash,
                      const std::vector<int>& exclude) const {
  if (ring_.empty()) return -1;
  std::lock_guard<std::mutex> lock(mu_);
  // First ring entry clockwise from `hash`, then walk; each distinct worker
  // is considered at most once, so the scan is bounded even when every arc
  // belongs to unusable workers.
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), hash,
      [](const RingEntry& e, std::uint64_t h) { return e.hash < h; });
  std::vector<char> seen(addrs_.size(), 0);
  std::size_t considered = 0;
  for (std::size_t step = 0;
       step < ring_.size() && considered < addrs_.size(); ++step, ++it) {
    if (it == ring_.end()) it = ring_.begin();
    const int w = it->worker;
    if (seen[w]) continue;
    seen[w] = 1;
    ++considered;
    if (!machines_[w].usable()) continue;
    if (std::find(exclude.begin(), exclude.end(), w) != exclude.end())
      continue;
    return w;
  }
  return -1;
}

void WorkerPool::apply_result_locked(std::size_t worker, bool ok,
                                     std::int64_t now) {
  const WorkerStateMachine::Transition t = machines_[worker].on_result(ok, now);
  if (metrics_) {
    if (t.ejected) metrics_->record_coord_ejection();
    metrics_->set_coord_workers_up(usable_count_locked());
  }
}

void WorkerPool::report(std::size_t worker, bool ok) {
  std::lock_guard<std::mutex> lock(mu_);
  apply_result_locked(worker, ok, now_ms());
}

bool WorkerPool::probe_worker(std::size_t worker) const {
  const util::fault::Action a = util::fault::at("coord.health");
  if (a.kind == util::fault::Kind::Errno) return false;
  try {
    HttpRequest req;
    req.method = "GET";
    req.target = "/healthz";
    return http_fetch(addrs_[worker].host, addrs_[worker].port,
                      std::move(req), policy_.timeout_ms)
               .status == 200;
  } catch (const FetchError&) {
    return false;
  }
}

void WorkerPool::probe_all(std::int64_t now_ms) {
  // Collect the due set under the lock, probe without it (each probe is a
  // blocking HTTP exchange), then feed outcomes back in.
  std::vector<std::size_t> due;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (std::size_t w = 0; w < machines_.size(); ++w)
      if (machines_[w].probe_due(now_ms)) due.push_back(w);
  }
  for (const std::size_t w : due) {
    const bool ok = probe_worker(w);
    std::lock_guard<std::mutex> lock(mu_);
    apply_result_locked(w, ok, WorkerPool::now_ms());
  }
}

void WorkerPool::prober_loop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(stop_mu_);
      if (stop_cv_.wait_for(lock,
                            std::chrono::milliseconds(policy_.interval_ms),
                            [this] { return stopping_; }))
        return;
    }
    probe_all(now_ms());
  }
}

}  // namespace sqz::serve
