// Worker-side dynamic membership: the --join heartbeat loop
// (ARCHITECTURE.md "Dynamic membership & coordinator HA").
//
// A worker started with `sqzserved --join host:port[,host:port...]` owns a
// Joiner. It registers this worker with a coordinator over
// POST /v1/workers/register on boot, then renews the lease at a third of
// the TTL the coordinator actually *granted* (parsed from the register
// response — the grant may clamp or substitute the requested TTL, and a
// cadence computed from the wrong number would let the lease lapse between
// renewals), so two heartbeats can be lost before the coordinator expires
// the member. Registration is idempotent on the coordinator (a renewal is just
// a register of the same host:port), which makes partition recovery free:
// when heartbeats start failing the Joiner falls back to jittered-backoff
// retries, rotating round-robin through the configured endpoints (a
// primary and its standby, typically), and whichever coordinator answers
// next simply re-admits the worker. The worker serves /v1/sweep chunks the
// whole time — membership is about routing, not ability.
//
// Graceful drain: drain() stops the heartbeat and best-effort deregisters,
// so a SIGTERM'd worker leaves the ring *before* its listener closes and
// planned maintenance causes zero chunk requeues (the Server sequences
// this in stop()). An unplanned death simply stops renewing; the lease
// expires one TTL later.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/httpclient.h"

namespace sqz::serve {

class Metrics;

struct JoinerOptions {
  /// Coordinator endpoints to register with, tried round-robin. Empty =
  /// joining disabled.
  std::vector<HostPort> endpoints;

  /// This worker's address as the coordinator should dial it.
  std::string advertise_host = "127.0.0.1";
  int advertise_port = 0;

  /// Requested TTL. The renewal cadence comes from the TTL the coordinator
  /// grants in its register response (granted / 3), falling back to this
  /// value when the response carries no parseable grant.
  std::int64_t lease_ms = 5000;

  /// Jittered-backoff schedule while no coordinator answers.
  int retry_base_ms = 200;
  int retry_cap_ms = 2000;

  int timeout_ms = 2000;  ///< Per-register HTTP deadline.
};

class Joiner {
 public:
  /// `metrics` (may be null) receives worker_joined / worker_drains counts.
  Joiner(const JoinerOptions& options, Metrics* metrics);
  ~Joiner();  ///< Calls stop() (no deregistration — that is drain()).

  Joiner(const Joiner&) = delete;
  Joiner& operator=(const Joiner&) = delete;

  void start();  ///< Spawn the heartbeat thread. Idempotent with stop().

  /// Stop heartbeating without deregistering (the lease just expires).
  void stop();

  /// Graceful exit: stop heartbeating, then best-effort deregister from the
  /// coordinator that last accepted us (counted in worker_drains on
  /// success). Safe to call more than once.
  void drain();

  bool joined() const { return joined_.load(); }

  /// The endpoint currently (or last) registered with, "host:port"; for
  /// the /healthz membership block.
  std::string current_endpoint() const;

  /// The lease TTL the coordinator last granted (the requested TTL until a
  /// register response says otherwise). The heartbeat renews at a third of
  /// this; surfaced on the /healthz membership block.
  std::int64_t granted_lease_ms() const { return granted_lease_ms_.load(); }

 private:
  bool post_registration(const HostPort& coordinator, bool deregister);
  void heartbeat_loop();

  JoinerOptions options_;
  Metrics* metrics_;

  std::atomic<bool> joined_{false};
  std::atomic<std::int64_t> granted_lease_ms_;  ///< Last granted TTL.
  mutable std::mutex mu_;
  std::size_t endpoint_ = 0;  ///< Round-robin cursor; guarded by mu_.

  std::thread heartbeat_;
  std::mutex stop_mu_;
  std::condition_variable stop_cv_;
  bool stopping_ = false;  ///< Guarded by stop_mu_.
  std::atomic<bool> drained_{false};
};

}  // namespace sqz::serve
