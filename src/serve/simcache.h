// Content-addressed result cache for the simulation service.
//
// Keys are the FNV-1a 64-bit hash of a *canonicalized* request (see
// serve/api.h: zoo names resolve to the serialized model text, configs
// render through config_to_ini, options take a fixed field order), so two
// requests that mean the same simulation share one entry regardless of how
// the client spelled them. The hash indexes the tiers; the full canonical
// key is stored alongside each value and compared on lookup, so a 64-bit
// collision degrades to a miss, never to a wrong result.
//
// Two tiers:
//   - in-memory, LRU-bounded by entry count (repeat design points return in
//     microseconds);
//   - optional on-disk (`--cache-dir`): one file per key, written on every
//     insert, read (and promoted to memory) on a memory miss. Unbounded;
//     survives daemon restarts. Entries are immutable — the same canonical
//     request always produces the same bytes — so files are never updated
//     in place, and concurrent daemons may safely share a directory.
//
// The disk tier trusts nothing it reads back (ARCHITECTURE.md "Fault
// tolerance"): every entry carries an FNV-1a checksum in its header,
// verified on read. A corrupt or truncated entry is quarantined (renamed
// `*.bad`) and treated as a miss, never served. Construction sweeps the
// directory for crashed-writer leftovers (`*.tmp` removed, zero-length
// entries quarantined). Persistent I/O failures demote the cache to
// memory-only with a logged warning instead of failing requests; the
// "simcache.read" / "simcache.write" fault points (util/faultinject.h) let
// tests drive every one of those paths deterministically.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

namespace sqz::serve {

class SimCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;        ///< Served from memory or disk.
    std::uint64_t disk_hits = 0;   ///< Subset of hits that came from disk.
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;   ///< Memory-tier LRU evictions.
    std::size_t entries = 0;       ///< Current memory-tier size.
    std::uint64_t disk_quarantined = 0;  ///< Corrupt entries renamed *.bad.
    std::uint64_t disk_errors = 0;       ///< Read/write failures absorbed.
    bool disk_demoted = false;  ///< True once demoted to memory-only.
  };

  /// Consecutive disk failures tolerated before the disk tier is demoted
  /// to memory-only for the rest of the process.
  static constexpr int kDiskFailureLimit = 4;

  /// `max_entries` bounds the memory tier (>= 1). `disk_dir` enables the
  /// on-disk tier; the directory is created if missing (throws
  /// std::runtime_error when that fails).
  explicit SimCache(std::size_t max_entries, const std::string& disk_dir = "");

  SimCache(const SimCache&) = delete;
  SimCache& operator=(const SimCache&) = delete;

  /// Look up a canonicalized request. Thread-safe.
  std::optional<std::string> get(const std::string& canonical_key);

  /// Insert a result. Re-inserting an existing key refreshes its LRU slot;
  /// values are assumed immutable per key. Thread-safe.
  void put(const std::string& canonical_key, const std::string& value);

  Stats stats() const;

  /// FNV-1a 64-bit over arbitrary bytes — the content address.
  static std::uint64_t fnv1a(std::string_view bytes) noexcept;

 private:
  struct Entry {
    std::uint64_t hash;
    std::string key;    ///< Full canonical key, collision guard.
    std::string value;
  };

  std::optional<std::string> disk_get(std::uint64_t hash,
                                      const std::string& canonical_key);
  void disk_put(std::uint64_t hash, const std::string& canonical_key,
                const std::string& value);
  void insert_locked(std::uint64_t hash, const std::string& key,
                     const std::string& value);
  std::string disk_path(std::uint64_t hash) const;
  void scan_disk_tier();
  void quarantine(const std::string& path, const std::string& why);
  void note_disk_error(const std::string& what);
  void note_disk_ok();
  bool disk_enabled() const {
    return !disk_dir_.empty() && !disk_demoted_.load(std::memory_order_relaxed);
  }

  const std::size_t max_entries_;
  const std::string disk_dir_;
  std::atomic<bool> disk_demoted_{false};

  mutable std::mutex mu_;
  std::list<Entry> lru_;  ///< Front = most recently used.
  std::unordered_map<std::uint64_t, std::list<Entry>::iterator> index_;
  Stats stats_;
  int disk_failure_streak_ = 0;  ///< Consecutive failures; reset on success.
};

}  // namespace sqz::serve
