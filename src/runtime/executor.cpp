#include "runtime/executor.h"

#include <stdexcept>

#include "runtime/gemm.h"
#include "runtime/ops.h"

namespace sqz::runtime {

Executor::Executor(const nn::Model& model, ExecutorConfig config)
    : model_(model), config_(config) {
  if (!model.finalized())
    throw std::invalid_argument("Executor: model must be finalized");
  weight_cache_.resize(static_cast<std::size_t>(model.layer_count()));
  weight_ready_.assign(static_cast<std::size_t>(model.layer_count()), false);
}

const WeightTensor& Executor::weights(int idx) {
  auto& slot = weight_cache_.at(static_cast<std::size_t>(idx));
  if (!weight_ready_.at(static_cast<std::size_t>(idx))) {
    slot = generate_weights(model_, idx, config_.weights);
    weight_ready_[static_cast<std::size_t>(idx)] = true;
  }
  return slot;
}

void Executor::run() { run(generate_input(model_, config_.input_seed)); }

void Executor::run(const Tensor& input) {
  if (!(input.shape() == model_.input_shape()))
    throw std::invalid_argument("Executor::run: input shape mismatch");
  outputs_.assign(static_cast<std::size_t>(model_.layer_count()), Tensor{});
  outputs_[0] = input;

  for (int i = 1; i < model_.layer_count(); ++i) {
    const nn::Layer& l = model_.layer(i);
    const Tensor& in0 = outputs_[static_cast<std::size_t>(l.inputs.at(0))];
    switch (l.kind) {
      case nn::LayerKind::Input:
        throw std::logic_error("Executor: unexpected input layer");
      case nn::LayerKind::Conv: {
        Requant rq = config_.requant;
        rq.relu = l.conv.relu;
        outputs_[static_cast<std::size_t>(i)] =
            l.macs() >= config_.gemm_threshold_macs
                ? conv2d_gemm(in0, weights(i), l.conv, rq)
                : conv2d(in0, weights(i), l.conv, rq);
        break;
      }
      case nn::LayerKind::FullyConnected: {
        Requant rq = config_.requant;
        rq.relu = l.fc.relu;
        outputs_[static_cast<std::size_t>(i)] =
            fully_connected(in0, weights(i), l.fc, rq);
        break;
      }
      case nn::LayerKind::MaxPool:
        outputs_[static_cast<std::size_t>(i)] = maxpool(in0, l.pool);
        break;
      case nn::LayerKind::AvgPool:
        outputs_[static_cast<std::size_t>(i)] = avgpool(in0, l.pool);
        break;
      case nn::LayerKind::GlobalAvgPool:
        outputs_[static_cast<std::size_t>(i)] = global_avgpool(in0);
        break;
      case nn::LayerKind::ReLU:
        outputs_[static_cast<std::size_t>(i)] = relu(in0);
        break;
      case nn::LayerKind::Concat: {
        std::vector<const Tensor*> ins;
        ins.reserve(l.inputs.size());
        for (int in : l.inputs) ins.push_back(&outputs_[static_cast<std::size_t>(in)]);
        outputs_[static_cast<std::size_t>(i)] = concat_channels(ins);
        break;
      }
      case nn::LayerKind::Add:
        outputs_[static_cast<std::size_t>(i)] =
            add_tensors(in0, outputs_[static_cast<std::size_t>(l.inputs.at(1))]);
        break;
    }
  }
  ran_ = true;
}

const Tensor& Executor::output(int idx) const {
  if (!ran_) throw std::logic_error("Executor::output: run() not called");
  return outputs_.at(static_cast<std::size_t>(idx));
}

const Tensor& Executor::final_output() const {
  return output(model_.layer_count() - 1);
}

}  // namespace sqz::runtime
