// Deterministic synthetic weight generation with the paper's sparsity model.
//
// SUBSTITUTION (DESIGN.md §3): the paper runs trained ImageNet models and
// "conservatively models the sparsity, i.e. the number of zero weights, of
// each DNN layer at 40%". Cycle and energy results depend only on layer
// shapes and on which weights are zero — not on the weight values — so we
// generate weights from a seeded PRNG with exactly that Bernoulli(0.4)
// zero pattern. Each layer's stream is salted by layer index so models are
// stable under edits elsewhere in the graph.
#pragma once

#include <cstdint>

#include "nn/model.h"
#include "runtime/tensor.h"

namespace sqz::runtime {

struct WeightGenConfig {
  std::uint64_t seed = 0x5EEDULL;
  double sparsity = 0.40;      ///< Probability a weight word is exactly zero.
  int magnitude = 63;          ///< Non-zero values are uniform in [-mag, mag]\{0}.
  bool biases = true;          ///< Small random biases; zero if false.
};

/// Generate weights for a Conv or FullyConnected layer of `model`.
/// Throws std::invalid_argument for parameterless layers.
WeightTensor generate_weights(const nn::Model& model, int layer_idx,
                              const WeightGenConfig& config);

/// Deterministic input activation tensor for a model (salted separately from
/// any layer's weights).
Tensor generate_input(const nn::Model& model, std::uint64_t seed);

}  // namespace sqz::runtime
