#include "runtime/gemm.h"

#include <stdexcept>

#include "nn/shape.h"

namespace sqz::runtime {

void gemm_i16(const std::int16_t* a, const std::int16_t* b, std::int64_t* c,
              int m, int k, int n) {
  for (int i = 0; i < m; ++i)
    for (int j = 0; j < n; ++j) c[static_cast<std::size_t>(i) * n + j] = 0;
  // ikj order: the inner loop walks both b and c contiguously.
  for (int i = 0; i < m; ++i) {
    for (int kk = 0; kk < k; ++kk) {
      const std::int64_t aik = a[static_cast<std::size_t>(i) * k + kk];
      if (aik == 0) continue;
      const std::int16_t* brow = b + static_cast<std::size_t>(kk) * n;
      std::int64_t* crow = c + static_cast<std::size_t>(i) * n;
      for (int j = 0; j < n; ++j) crow[j] += aik * brow[j];
    }
  }
}

std::vector<std::int16_t> im2col(const Tensor& input, const nn::ConvParams& params,
                                 int group) {
  const nn::TensorShape in = input.shape();
  const int cin_pg = in.c / params.groups;
  const int oh = nn::conv_out_extent(in.h, params.kh, params.stride, params.pad_h);
  const int ow = nn::conv_out_extent(in.w, params.kw, params.stride, params.pad_w);
  const std::size_t k =
      static_cast<std::size_t>(cin_pg) * params.kh * params.kw;
  const std::size_t n = static_cast<std::size_t>(oh) * ow;

  std::vector<std::int16_t> cols(k * n, 0);
  std::size_t row = 0;
  for (int icg = 0; icg < cin_pg; ++icg) {
    const int ic = group * cin_pg + icg;
    for (int ky = 0; ky < params.kh; ++ky) {
      for (int kx = 0; kx < params.kw; ++kx, ++row) {
        std::int16_t* dst = cols.data() + row * n;
        std::size_t col = 0;
        for (int oy = 0; oy < oh; ++oy) {
          const int iy = oy * params.stride - params.pad_h + ky;
          for (int ox = 0; ox < ow; ++ox, ++col) {
            const int ix = ox * params.stride - params.pad_w + kx;
            dst[col] = (iy >= 0 && iy < in.h && ix >= 0 && ix < in.w)
                           ? input.at(ic, iy, ix)
                           : static_cast<std::int16_t>(0);
          }
        }
      }
    }
  }
  return cols;
}

Tensor conv2d_gemm(const Tensor& input, const WeightTensor& weights,
                   const nn::ConvParams& params, const Requant& requant) {
  const nn::TensorShape in = input.shape();
  if (in.c % params.groups != 0 || params.out_channels % params.groups != 0)
    throw std::invalid_argument("conv2d_gemm: groups must divide channels");
  const int cin_pg = in.c / params.groups;
  const int cout_pg = params.out_channels / params.groups;
  if (weights.oc() != params.out_channels || weights.ic_per_group() != cin_pg ||
      weights.kh() != params.kh || weights.kw() != params.kw)
    throw std::invalid_argument("conv2d_gemm: weight tensor shape mismatch");

  const int oh = nn::conv_out_extent(in.h, params.kh, params.stride, params.pad_h);
  const int ow = nn::conv_out_extent(in.w, params.kw, params.stride, params.pad_w);
  const int k = cin_pg * params.kh * params.kw;
  const int n = oh * ow;

  Tensor out(nn::TensorShape{params.out_channels, oh, ow});
  std::vector<std::int64_t> acc(static_cast<std::size_t>(cout_pg) * n);
  for (int g = 0; g < params.groups; ++g) {
    const std::vector<std::int16_t> cols = im2col(input, params, g);
    // The weight tensor's [oc][ic][ky][kx] layout is already the row-major
    // (cout_pg x K) matrix for this group.
    const std::int16_t* wmat =
        weights.data() +
        static_cast<std::size_t>(g) * cout_pg * weights.filter_words();
    gemm_i16(wmat, cols.data(), acc.data(), cout_pg, k, n);
    for (int ocg = 0; ocg < cout_pg; ++ocg) {
      const int oc = g * cout_pg + ocg;
      const std::int64_t bias = weights.bias(oc);
      for (int px = 0; px < n; ++px)
        out.set(oc, px / ow, px % ow,
                requant.apply(acc[static_cast<std::size_t>(ocg) * n + px] + bias));
    }
  }
  return out;
}

}  // namespace sqz::runtime
