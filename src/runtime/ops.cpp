#include "runtime/ops.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "nn/shape.h"

namespace sqz::runtime {

Tensor conv2d(const Tensor& input, const WeightTensor& weights,
              const nn::ConvParams& params, const Requant& requant) {
  const nn::TensorShape in = input.shape();
  const int groups = params.groups;
  if (in.c % groups != 0 || params.out_channels % groups != 0)
    throw std::invalid_argument("conv2d: groups must divide channels");
  const int cin_pg = in.c / groups;
  const int cout_pg = params.out_channels / groups;
  if (weights.oc() != params.out_channels || weights.ic_per_group() != cin_pg ||
      weights.kh() != params.kh || weights.kw() != params.kw)
    throw std::invalid_argument("conv2d: weight tensor shape mismatch");

  const int oh = nn::conv_out_extent(in.h, params.kh, params.stride, params.pad_h);
  const int ow = nn::conv_out_extent(in.w, params.kw, params.stride, params.pad_w);
  Tensor out(nn::TensorShape{params.out_channels, oh, ow});

  for (int g = 0; g < groups; ++g) {
    for (int ocg = 0; ocg < cout_pg; ++ocg) {
      const int oc = g * cout_pg + ocg;
      for (int oy = 0; oy < oh; ++oy) {
        for (int ox = 0; ox < ow; ++ox) {
          std::int64_t acc = weights.bias(oc);
          for (int icg = 0; icg < cin_pg; ++icg) {
            const int ic = g * cin_pg + icg;
            for (int ky = 0; ky < params.kh; ++ky) {
              const int iy = oy * params.stride - params.pad_h + ky;
              if (iy < 0 || iy >= in.h) continue;
              for (int kx = 0; kx < params.kw; ++kx) {
                const int ix = ox * params.stride - params.pad_w + kx;
                if (ix < 0 || ix >= in.w) continue;
                acc += static_cast<std::int64_t>(input.at(ic, iy, ix)) *
                       weights.at(oc, icg, ky, kx);
              }
            }
          }
          out.set(oc, oy, ox, requant.apply(acc));
        }
      }
    }
  }
  return out;
}

Tensor fully_connected(const Tensor& input, const WeightTensor& weights,
                       const nn::FcParams& params, const Requant& requant) {
  const std::int64_t in_elems = input.shape().elems();
  if (weights.oc() != params.out_features ||
      weights.ic_per_group() != static_cast<int>(in_elems) || weights.kh() != 1 ||
      weights.kw() != 1)
    throw std::invalid_argument("fully_connected: weight tensor shape mismatch");

  Tensor out(nn::TensorShape{params.out_features, 1, 1});
  const std::int16_t* flat = input.data();
  for (int o = 0; o < params.out_features; ++o) {
    std::int64_t acc = weights.bias(o);
    for (std::int64_t i = 0; i < in_elems; ++i)
      acc += static_cast<std::int64_t>(flat[i]) *
             weights.at(o, static_cast<int>(i), 0, 0);
    out.set(o, 0, 0, requant.apply(acc));
  }
  return out;
}

Tensor maxpool(const Tensor& input, const nn::PoolParams& params) {
  const nn::TensorShape in = input.shape();
  const int oh = nn::conv_out_extent(in.h, params.kh, params.stride, params.pad);
  const int ow = nn::conv_out_extent(in.w, params.kw, params.stride, params.pad);
  Tensor out(nn::TensorShape{in.c, oh, ow});
  for (int c = 0; c < in.c; ++c) {
    for (int oy = 0; oy < oh; ++oy) {
      for (int ox = 0; ox < ow; ++ox) {
        std::int16_t best = std::numeric_limits<std::int16_t>::min();
        for (int ky = 0; ky < params.kh; ++ky) {
          const int iy = oy * params.stride - params.pad + ky;
          if (iy < 0 || iy >= in.h) continue;
          for (int kx = 0; kx < params.kw; ++kx) {
            const int ix = ox * params.stride - params.pad + kx;
            if (ix < 0 || ix >= in.w) continue;
            best = std::max(best, input.at(c, iy, ix));
          }
        }
        out.set(c, oy, ox, best);
      }
    }
  }
  return out;
}

Tensor avgpool(const Tensor& input, const nn::PoolParams& params) {
  const nn::TensorShape in = input.shape();
  const int oh = nn::conv_out_extent(in.h, params.kh, params.stride, params.pad);
  const int ow = nn::conv_out_extent(in.w, params.kw, params.stride, params.pad);
  Tensor out(nn::TensorShape{in.c, oh, ow});
  const int window = params.kh * params.kw;
  for (int c = 0; c < in.c; ++c) {
    for (int oy = 0; oy < oh; ++oy) {
      for (int ox = 0; ox < ow; ++ox) {
        std::int64_t sum = 0;
        for (int ky = 0; ky < params.kh; ++ky)
          for (int kx = 0; kx < params.kw; ++kx)
            sum += input.at_padded(c, oy * params.stride - params.pad + ky,
                                   ox * params.stride - params.pad + kx);
        out.set(c, oy, ox, static_cast<std::int16_t>(sum / window));
      }
    }
  }
  return out;
}

Tensor global_avgpool(const Tensor& input) {
  const nn::TensorShape in = input.shape();
  Tensor out(nn::TensorShape{in.c, 1, 1});
  const std::int64_t window = static_cast<std::int64_t>(in.h) * in.w;
  for (int c = 0; c < in.c; ++c) {
    std::int64_t sum = 0;
    for (int y = 0; y < in.h; ++y)
      for (int x = 0; x < in.w; ++x) sum += input.at(c, y, x);
    out.set(c, 0, 0, static_cast<std::int16_t>(sum / window));
  }
  return out;
}

Tensor relu(const Tensor& input) {
  Tensor out(input.shape());
  for (std::int64_t i = 0; i < input.size(); ++i)
    out.data()[i] = std::max<std::int16_t>(0, input.data()[i]);
  return out;
}

Tensor concat_channels(const std::vector<const Tensor*>& inputs) {
  if (inputs.empty()) throw std::invalid_argument("concat_channels: no inputs");
  const nn::TensorShape first = inputs.front()->shape();
  int channels = 0;
  for (const Tensor* t : inputs) {
    if (t->shape().h != first.h || t->shape().w != first.w)
      throw std::invalid_argument("concat_channels: spatial mismatch");
    channels += t->shape().c;
  }
  Tensor out(nn::TensorShape{channels, first.h, first.w});
  int base = 0;
  for (const Tensor* t : inputs) {
    for (int c = 0; c < t->shape().c; ++c)
      for (int y = 0; y < first.h; ++y)
        for (int x = 0; x < first.w; ++x)
          out.set(base + c, y, x, t->at(c, y, x));
    base += t->shape().c;
  }
  return out;
}

Tensor add_tensors(const Tensor& a, const Tensor& b) {
  if (!(a.shape() == b.shape()))
    throw std::invalid_argument("add_tensors: shape mismatch");
  Tensor out(a.shape());
  for (std::int64_t i = 0; i < a.size(); ++i)
    out.data()[i] = sat_add16(a.data()[i], b.data()[i]);
  return out;
}

}  // namespace sqz::runtime
