// Reference (golden) implementations of every layer kind.
//
// These are straightforward loop-nest implementations — the semantics the
// dataflow emulators must match bit-for-bit. Accumulation is 64-bit to keep
// the reference unimpeachable; inputs/weights are bounded so 32 bits would
// suffice, and the emulators are tested against this either way.
#pragma once

#include "nn/layer.h"
#include "runtime/quant.h"
#include "runtime/tensor.h"

namespace sqz::runtime {

/// Grouped 2-D convolution (covers pointwise, spatial and depthwise).
Tensor conv2d(const Tensor& input, const WeightTensor& weights,
              const nn::ConvParams& params, const Requant& requant);

/// Dense layer over the flattened input.
Tensor fully_connected(const Tensor& input, const WeightTensor& weights,
                       const nn::FcParams& params, const Requant& requant);

Tensor maxpool(const Tensor& input, const nn::PoolParams& params);
/// Average pool divides by the window size with truncation toward zero
/// (integer arithmetic; padding contributes zeros and still counts in the
/// divisor, matching common integer NPU behaviour).
Tensor avgpool(const Tensor& input, const nn::PoolParams& params);
Tensor global_avgpool(const Tensor& input);
Tensor relu(const Tensor& input);
Tensor concat_channels(const std::vector<const Tensor*>& inputs);
Tensor add_tensors(const Tensor& a, const Tensor& b);

}  // namespace sqz::runtime
