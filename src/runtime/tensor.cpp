#include "runtime/tensor.h"

#include <stdexcept>

namespace sqz::runtime {

Tensor::Tensor(nn::TensorShape shape) : shape_(shape) {
  if (shape.c <= 0 || shape.h <= 0 || shape.w <= 0)
    throw std::invalid_argument("Tensor: shape must be positive");
  data_.assign(static_cast<std::size_t>(shape.elems()), 0);
}

WeightTensor::WeightTensor(int oc, int ic_per_group, int kh, int kw)
    : oc_(oc), ic_pg_(ic_per_group), kh_(kh), kw_(kw) {
  if (oc <= 0 || ic_per_group <= 0 || kh <= 0 || kw <= 0)
    throw std::invalid_argument("WeightTensor: dimensions must be positive");
  w_.assign(static_cast<std::size_t>(oc) * static_cast<std::size_t>(ic_per_group) *
                static_cast<std::size_t>(kh) * static_cast<std::size_t>(kw),
            0);
  bias_.assign(static_cast<std::size_t>(oc), 0);
}

std::int64_t WeightTensor::nonzero_count() const noexcept {
  std::int64_t n = 0;
  for (std::int16_t v : w_)
    if (v != 0) ++n;
  return n;
}

std::int64_t WeightTensor::nonzero_count(int oc, int ic) const noexcept {
  std::int64_t n = 0;
  for (int ky = 0; ky < kh_; ++ky)
    for (int kx = 0; kx < kw_; ++kx)
      if (at(oc, ic, ky, kx) != 0) ++n;
  return n;
}

}  // namespace sqz::runtime
