// Convolution by im2col + GEMM — the classic lowering (and the mental model
// behind the WS dataflow's matrix-vector view).
//
// This is a second, independently-written implementation of the same
// convolution semantics as runtime/ops.h; tests require bit-exact agreement
// between the two, which protects the golden reference itself against
// loop-nest mistakes. It is also considerably faster for large layers
// (contiguous inner loops), so the executor can use it for big golden runs.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/layer.h"
#include "runtime/quant.h"
#include "runtime/tensor.h"

namespace sqz::runtime {

/// Plain int16 GEMM with 64-bit accumulation:
///   c[m][n] = sum_k a[m][k] * b[k][n]
/// `a` is MxK row-major, `b` is KxN row-major, `c` is MxN row-major
/// (caller-sized to M*N; overwritten).
void gemm_i16(const std::int16_t* a, const std::int16_t* b, std::int64_t* c,
              int m, int k, int n);

/// The im2col patch matrix of one group: K = cin_pg*kh*kw rows, N = oh*ow
/// columns, row-major (K x N). Out-of-bounds taps contribute zeros.
std::vector<std::int16_t> im2col(const Tensor& input, const nn::ConvParams& params,
                                 int group);

/// conv2d by im2col + GEMM; semantics identical to runtime::conv2d.
Tensor conv2d_gemm(const Tensor& input, const WeightTensor& weights,
                   const nn::ConvParams& params, const Requant& requant);

}  // namespace sqz::runtime
