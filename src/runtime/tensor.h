// 16-bit integer tensors for the functional inference runtime.
//
// The accelerator in the paper computes on 16-bit integers with a 16-bit
// multiplier and wider accumulation; the runtime mirrors that so the
// functional dataflow emulators (src/sim/functional) can be validated
// bit-exactly against this reference implementation.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/shape.h"

namespace sqz::runtime {

/// Dense CHW activation tensor of int16 words (batch is implicitly 1).
class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(nn::TensorShape shape);

  nn::TensorShape shape() const noexcept { return shape_; }
  std::int64_t size() const noexcept { return static_cast<std::int64_t>(data_.size()); }

  /// Unchecked fast path used by inner loops.
  std::int16_t at(int c, int y, int x) const noexcept {
    return data_[index(c, y, x)];
  }
  void set(int c, int y, int x, std::int16_t v) noexcept { data_[index(c, y, x)] = v; }

  /// Zero-padded read: coordinates outside the spatial extent return 0
  /// (convolution padding); channel must be in range.
  std::int16_t at_padded(int c, int y, int x) const noexcept {
    if (y < 0 || y >= shape_.h || x < 0 || x >= shape_.w) return 0;
    return at(c, y, x);
  }

  std::int16_t* data() noexcept { return data_.data(); }
  const std::int16_t* data() const noexcept { return data_.data(); }

  bool operator==(const Tensor&) const = default;

 private:
  std::size_t index(int c, int y, int x) const noexcept {
    return (static_cast<std::size_t>(c) * static_cast<std::size_t>(shape_.h) +
            static_cast<std::size_t>(y)) *
               static_cast<std::size_t>(shape_.w) +
           static_cast<std::size_t>(x);
  }

  nn::TensorShape shape_;
  std::vector<std::int16_t> data_;
};

/// Convolution weights laid out [oc][ic_per_group][kh][kw], plus int32 bias.
/// For FC layers, kh = kw = 1 and ic_per_group = flattened input size.
class WeightTensor {
 public:
  WeightTensor() = default;
  WeightTensor(int oc, int ic_per_group, int kh, int kw);

  int oc() const noexcept { return oc_; }
  int ic_per_group() const noexcept { return ic_pg_; }
  int kh() const noexcept { return kh_; }
  int kw() const noexcept { return kw_; }
  std::int64_t size() const noexcept { return static_cast<std::int64_t>(w_.size()); }

  std::int16_t at(int oc, int ic, int ky, int kx) const noexcept {
    return w_[index(oc, ic, ky, kx)];
  }
  void set(int oc, int ic, int ky, int kx, std::int16_t v) noexcept {
    w_[index(oc, ic, ky, kx)] = v;
  }

  std::int32_t bias(int oc) const noexcept { return bias_[static_cast<std::size_t>(oc)]; }
  void set_bias(int oc, std::int32_t v) noexcept { bias_[static_cast<std::size_t>(oc)] = v; }

  /// Raw row-major [oc][ic_per_group][kh][kw] storage; each output channel's
  /// filter occupies one contiguous row of ic_per_group*kh*kw words (the
  /// GEMM lowering in runtime/gemm.h relies on this layout).
  const std::int16_t* data() const noexcept { return w_.data(); }
  std::int64_t filter_words() const noexcept {
    return static_cast<std::int64_t>(ic_pg_) * kh_ * kw_;
  }

  /// Number of non-zero weight words (drives the OS dataflow's zero-skip).
  std::int64_t nonzero_count() const noexcept;
  /// Non-zero taps of one (oc, ic) filter plane.
  std::int64_t nonzero_count(int oc, int ic) const noexcept;

 private:
  std::size_t index(int oc, int ic, int ky, int kx) const noexcept {
    return ((static_cast<std::size_t>(oc) * static_cast<std::size_t>(ic_pg_) +
             static_cast<std::size_t>(ic)) *
                static_cast<std::size_t>(kh_) +
            static_cast<std::size_t>(ky)) *
               static_cast<std::size_t>(kw_) +
           static_cast<std::size_t>(kx);
  }

  int oc_ = 0, ic_pg_ = 0, kh_ = 0, kw_ = 0;
  std::vector<std::int16_t> w_;
  std::vector<std::int32_t> bias_;
};

}  // namespace sqz::runtime
