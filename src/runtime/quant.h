// Fixed-point requantization shared by the reference runtime and the
// functional dataflow emulators. Both must use exactly this arithmetic so
// that outputs can be compared bit-exactly.
#pragma once

#include <cstdint>

namespace sqz::runtime {

/// Requantization applied to a 32-bit accumulator after a conv/fc layer:
/// arithmetic right shift with round-to-nearest, then saturation to int16,
/// then optional ReLU.
struct Requant {
  int shift = 7;
  bool relu = true;

  std::int16_t apply(std::int64_t acc) const noexcept {
    // Round to nearest (ties away from zero for negatives is fine here as
    // long as every engine does the same thing). shift == 0 passes through.
    const std::int64_t rounding =
        shift > 0 ? std::int64_t{1} << (shift - 1) : 0;
    std::int64_t v = (acc + rounding) >> shift;
    if (relu && v < 0) v = 0;
    if (v > 32767) v = 32767;
    if (v < -32768) v = -32768;
    return static_cast<std::int16_t>(v);
  }
};

/// Saturating int16 addition (elementwise residual adds).
std::int16_t sat_add16(std::int16_t a, std::int16_t b) noexcept;

}  // namespace sqz::runtime
