// Whole-model functional execution on the reference ops.
//
// The executor materializes every layer's output so the dataflow emulators
// (and tests) can fetch any intermediate activation. For the networks in the
// zoo at 227x227 this is a few tens of MB — fine for a host-side golden model.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/model.h"
#include "runtime/quant.h"
#include "runtime/tensor.h"
#include "runtime/weights.h"

namespace sqz::runtime {

struct ExecutorConfig {
  WeightGenConfig weights;
  Requant requant;            ///< Applied after every conv/fc.
  std::uint64_t input_seed = 0xCAFE;
  /// Conv layers at or above this MAC count run through the im2col+GEMM
  /// path (runtime/gemm.h) instead of the direct loop nest. Both paths are
  /// bit-exact (tests/runtime/test_gemm.cpp); this is purely a host-side
  /// speed knob for large golden runs. 0 = always GEMM; INT64_MAX = never.
  std::int64_t gemm_threshold_macs = 1 << 22;
};

class Executor {
 public:
  Executor(const nn::Model& model, ExecutorConfig config);

  /// Run the whole network on the deterministic synthetic input.
  void run();
  /// Run on a caller-provided input (shape must match the model).
  void run(const Tensor& input);

  const nn::Model& model() const noexcept { return model_; }
  /// Output of layer `idx` (run() must have been called).
  const Tensor& output(int idx) const;
  /// Output of the final layer.
  const Tensor& final_output() const;
  /// Weights generated for layer `idx` (conv/fc only; lazily cached).
  const WeightTensor& weights(int idx);

  const ExecutorConfig& config() const noexcept { return config_; }

 private:
  const nn::Model& model_;
  ExecutorConfig config_;
  std::vector<Tensor> outputs_;
  std::vector<WeightTensor> weight_cache_;
  std::vector<bool> weight_ready_;
  bool ran_ = false;
};

}  // namespace sqz::runtime
