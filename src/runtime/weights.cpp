#include "runtime/weights.h"

#include <stdexcept>

#include "util/rng.h"

namespace sqz::runtime {

using util::Rng;

WeightTensor generate_weights(const nn::Model& model, int layer_idx,
                              const WeightGenConfig& config) {
  const nn::Layer& l = model.layer(layer_idx);
  int oc = 0, ic_pg = 0, kh = 1, kw = 1;
  if (l.is_conv()) {
    oc = l.conv.out_channels;
    ic_pg = l.in_shape.c / l.conv.groups;
    kh = l.conv.kh;
    kw = l.conv.kw;
  } else if (l.is_fc()) {
    oc = l.fc.out_features;
    ic_pg = static_cast<int>(l.in_shape.elems());
  } else {
    throw std::invalid_argument("generate_weights: layer has no weights: " + l.name);
  }

  WeightTensor w(oc, ic_pg, kh, kw);
  Rng rng = Rng(config.seed).split(static_cast<std::uint64_t>(layer_idx));
  for (int o = 0; o < oc; ++o) {
    for (int i = 0; i < ic_pg; ++i) {
      for (int ky = 0; ky < kh; ++ky) {
        for (int kx = 0; kx < kw; ++kx) {
          if (rng.next_bernoulli(config.sparsity)) continue;  // stays zero
          // Uniform non-zero value in [-mag, mag] \ {0}.
          std::int64_t v = rng.next_in(1, config.magnitude);
          if (rng.next_bernoulli(0.5)) v = -v;
          w.set(o, i, ky, kx, static_cast<std::int16_t>(v));
        }
      }
    }
    if (config.biases)
      w.set_bias(o, static_cast<std::int32_t>(rng.next_in(-128, 127)));
  }
  return w;
}

Tensor generate_input(const nn::Model& model, std::uint64_t seed) {
  Tensor t(model.input_shape());
  Rng rng = Rng(seed).split(0xA11CE);
  for (std::int64_t i = 0; i < t.size(); ++i)
    t.data()[i] = static_cast<std::int16_t>(rng.next_in(-128, 127));
  return t;
}

}  // namespace sqz::runtime
