#include "runtime/quant.h"

namespace sqz::runtime {

std::int16_t sat_add16(std::int16_t a, std::int16_t b) noexcept {
  const std::int32_t v = static_cast<std::int32_t>(a) + static_cast<std::int32_t>(b);
  if (v > 32767) return 32767;
  if (v < -32768) return -32768;
  return static_cast<std::int16_t>(v);
}

}  // namespace sqz::runtime
