// Eyeriss-style energy model (paper §4.1.3): "It calculates the number of
// accesses of the MAC units and each memory layer, and then multiplies each
// by its unit energy, which is normalized by the energy consumption of the
// MAC unit. Here we modified the unit energy slightly to match this hardware
// configuration."
//
// The default unit energies are the Eyeriss hierarchy ratios (Chen et al.,
// ISCA'16): RF ~ 1x MAC, inter-PE ~ 2x, global SRAM ~ 6x, DRAM ~ 200x.
#pragma once

#include <string>

#include "sim/counters.h"

namespace sqz::util {
class JsonWriter;
}

namespace sqz::energy {

/// Per-access energy at each hierarchy level, normalized to one MAC == 1.0.
struct UnitEnergies {
  double mac = 1.0;
  double rf = 1.0;
  double inter_pe = 1.0;  ///< Mesh-neighbour hop ~ an RF access on this array.
  double acc = 2.0;   ///< Psum accumulator SRAM (small, near the array).
  double gb = 6.0;
  double dram = 200.0;

  /// The published Eyeriss ratios (also the defaults).
  static UnitEnergies eyeriss();
  /// Throws std::invalid_argument if any unit is negative.
  void validate() const;
};

/// Energy split by hierarchy level (units of one MAC operation's energy).
struct EnergyBreakdown {
  double mac = 0.0;
  double rf = 0.0;
  double inter_pe = 0.0;
  double acc = 0.0;
  double gb = 0.0;
  double dram = 0.0;

  double total() const noexcept { return mac + rf + inter_pe + acc + gb + dram; }
  EnergyBreakdown& operator+=(const EnergyBreakdown& o) noexcept;
  std::string to_string() const;
};

/// Append the per-level energies plus "total" as members of the currently
/// open JSON object (the caller brackets with begin_object/end_object).
void breakdown_to_json(const EnergyBreakdown& e, util::JsonWriter& w);

/// Append the unit energies as members of the currently open JSON object.
void units_to_json(const UnitEnergies& units, util::JsonWriter& w);

/// Energy of one access-count record.
EnergyBreakdown energy_of(const sim::AccessCounts& counts,
                          const UnitEnergies& units = {});

/// Total energy of a simulated network.
EnergyBreakdown network_energy(const sim::NetworkResult& result,
                               const UnitEnergies& units = {});

/// Average power drawn while running `result`, in milliwatts — the x-axis of
/// the paper's Figure 4 ("accuracy versus power"). Energy units are
/// MAC-normalized, so a physical scale is needed: `pj_per_mac` is the energy
/// of one 16-bit MAC (~1 pJ in the 28 nm class the paper targets).
double average_power_mw(const sim::NetworkResult& result,
                        const UnitEnergies& units = {}, double pj_per_mac = 1.0,
                        double clock_ghz = 1.0);

}  // namespace sqz::energy
