#include "energy/model.h"

#include <stdexcept>

#include "util/json.h"
#include "util/strings.h"

namespace sqz::energy {

UnitEnergies UnitEnergies::eyeriss() { return UnitEnergies{}; }

void UnitEnergies::validate() const {
  if (mac < 0 || rf < 0 || inter_pe < 0 || acc < 0 || gb < 0 || dram < 0)
    throw std::invalid_argument("UnitEnergies: negative unit energy");
}

EnergyBreakdown& EnergyBreakdown::operator+=(const EnergyBreakdown& o) noexcept {
  mac += o.mac;
  rf += o.rf;
  inter_pe += o.inter_pe;
  acc += o.acc;
  gb += o.gb;
  dram += o.dram;
  return *this;
}

std::string EnergyBreakdown::to_string() const {
  return util::format("total=%s (mac=%s rf=%s pe2pe=%s acc=%s gb=%s dram=%s)",
                      util::si(total()).c_str(), util::si(mac).c_str(),
                      util::si(rf).c_str(), util::si(inter_pe).c_str(),
                      util::si(acc).c_str(), util::si(gb).c_str(),
                      util::si(dram).c_str());
}

void breakdown_to_json(const EnergyBreakdown& e, util::JsonWriter& w) {
  w.member("mac", e.mac);
  w.member("rf", e.rf);
  w.member("inter_pe", e.inter_pe);
  w.member("acc", e.acc);
  w.member("gb", e.gb);
  w.member("dram", e.dram);
  w.member("total", e.total());
}

void units_to_json(const UnitEnergies& units, util::JsonWriter& w) {
  w.member("mac", units.mac);
  w.member("rf", units.rf);
  w.member("inter_pe", units.inter_pe);
  w.member("acc", units.acc);
  w.member("gb", units.gb);
  w.member("dram", units.dram);
}

EnergyBreakdown energy_of(const sim::AccessCounts& counts, const UnitEnergies& units) {
  EnergyBreakdown e;
  e.mac = static_cast<double>(counts.mac_ops) * units.mac;
  e.rf = static_cast<double>(counts.rf_reads + counts.rf_writes) * units.rf;
  e.inter_pe = static_cast<double>(counts.inter_pe) * units.inter_pe;
  e.acc = static_cast<double>(counts.acc_reads + counts.acc_writes) * units.acc;
  e.gb = static_cast<double>(counts.gb_reads + counts.gb_writes) * units.gb;
  e.dram = static_cast<double>(counts.dram_words) * units.dram;
  return e;
}

EnergyBreakdown network_energy(const sim::NetworkResult& result,
                               const UnitEnergies& units) {
  return energy_of(result.total_counts(), units);
}

double average_power_mw(const sim::NetworkResult& result,
                        const UnitEnergies& units, double pj_per_mac,
                        double clock_ghz) {
  const std::int64_t cycles = result.total_cycles();
  if (cycles <= 0) return 0.0;
  const double energy_pj = network_energy(result, units).total() * pj_per_mac;
  const double time_ns = static_cast<double>(cycles) / clock_ghz;
  return energy_pj / time_ns;  // pJ / ns == mW
}

}  // namespace sqz::energy
