// Analytical fast-path estimator: closed-form per-layer cycle counts and
// memory-hierarchy access counts computed directly from the tiling loop-nest
// parameters — no per-iteration mapper walk, no event simulation.
//
// The WS/OS loop nests (sim/mappers.cpp) are uniform except for boundary
// remainders, so every loop axis takes at most two distinct values (a full
// block and a remainder) with known multiplicities. Enumerating those
// variants and multiplying by their counts reproduces the mapper sums —
// including every ceil() term — exactly, in O(1) per layer instead of
// O(loop-nest trip count). The memory-system tail reuses the simulator's own
// finish_layer_result / simd_layer_pre_dram, so the two paths share one DRAM
// and placement model by construction.
//
// The tile-timeline mode is the one genuinely approximated component: the
// event-driven makespan (sim/timeline.h) is replaced by a closed-form
// pipeline bound over the same row-band geometry (sim/tiling.h). The
// validated accuracy contract — formulas, error bound, and when screening is
// safe — lives in docs/ESTIMATOR.md and is enforced by tests/est.
#pragma once

#include "nn/model.h"
#include "sched/network_sim.h"
#include "sim/config.h"
#include "sim/counters.h"
#include "sim/layer_sim.h"
#include "sim/mappers.h"

namespace sqz::est {

/// Closed-form equivalent of sim::map_weight_stationary. Exact: identical
/// compute_cycles and counts for every layer/config (asserted by tests/est).
sim::MappingResult estimate_ws_mapping(const nn::Layer& layer,
                                       const sim::AcceleratorConfig& config);

/// Closed-form equivalent of sim::map_output_stationary under the
/// expected-sparsity provider at rate `sparsity` (the only provider sweeps
/// use; measured-weight sparsity requires the real walk). Exact.
sim::MappingResult estimate_os_mapping(const nn::Layer& layer,
                                       const sim::AcceleratorConfig& config,
                                       double sparsity);

/// Closed-form equivalent of sim::simulate_layer (flat DRAM model, sparsity
/// taken from the config exactly as the simulate_layer convenience overload
/// does). Returns the same LayerResult shape; `timeline` is always empty.
sim::LayerResult estimate_layer(const nn::Model& model, int layer_idx,
                                const sim::AcceleratorConfig& config,
                                sim::Dataflow dataflow,
                                sim::TensorPlacement placement = {});

/// Closed-form stand-in for sim::retime_layer: replaces the event-driven
/// tile timeline with a pipeline bound over the same LayerDmaFacts band
/// geometry. Approximate (see docs/ESTIMATOR.md for the bound); counts gain
/// the same halo re-read traffic the real tiler adds.
sim::LayerResult estimate_retimed_layer(const nn::Model& model,
                                        const sim::LayerResult& analytic,
                                        const sim::AcceleratorConfig& config,
                                        sim::TensorPlacement placement,
                                        bool double_buffered,
                                        bool search_tiles = false);

/// Closed-form equivalent of sched::simulate_network: same residency plan,
/// same per-layer dataflow selection by objective, same pool-drain fusion
/// handling — every per-layer simulation replaced by estimate_layer (and
/// retime by estimate_retimed_layer when options.tile_timeline is set).
sim::NetworkResult estimate_network(const nn::Model& model,
                                    const sim::AcceleratorConfig& config,
                                    const sched::SimulationOptions& options = {});

}  // namespace sqz::est
