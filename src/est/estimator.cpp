#include "est/estimator.h"

#include <algorithm>
#include <array>
#include <map>
#include <stdexcept>

#include "energy/model.h"
#include "sched/fusion.h"
#include "sched/residency.h"
#include "sim/dram.h"
#include "sim/schedule.h"
#include "sim/sparsity.h"
#include "sim/tiling.h"

namespace sqz::est {

namespace {

/// One distinct value a blocked loop axis takes, with its multiplicity.
struct Variant {
  std::int64_t value = 0;
  std::int64_t count = 0;
};
using Variants = std::array<Variant, 2>;

/// An axis of extent `total` walked in blocks of `block` takes at most two
/// values: the full block (total/block times) and the remainder (once).
int block_variants(std::int64_t total, std::int64_t block, Variants& out) {
  int n = 0;
  if (total <= 0 || block <= 0) return 0;
  if (total / block > 0) out[n++] = {block, total / block};
  if (total % block > 0) out[n++] = {total % block, 1};
  return n;
}

void scale_counts(sim::AccessCounts& c, std::int64_t k) {
  c.mac_ops *= k;
  c.rf_reads *= k;
  c.rf_writes *= k;
  c.inter_pe *= k;
  c.acc_reads *= k;
  c.acc_writes *= k;
  c.gb_reads *= k;
  c.gb_writes *= k;
}

double objective_value(const sim::LayerResult& r, sched::Objective objective,
                       const energy::UnitEnergies& units) {
  if (objective == sched::Objective::Cycles)
    return static_cast<double>(r.total_cycles);
  return energy::energy_of(r.counts, units).total();
}

}  // namespace

sim::MappingResult estimate_ws_mapping(const nn::Layer& layer,
                                       const sim::AcceleratorConfig& config) {
  const sim::WsSchedule s = sim::WsSchedule::plan(layer, config);
  const int n = config.array_n;

  Variants cols, rows, taps;
  const int ncols = block_variants(s.cout_pg, n, cols);
  int nrows;
  if (s.tap_pack > 1) {
    // Tap packing keeps all input channels on the rows in one block.
    rows[0] = {s.cin_pg, 1};
    nrows = 1;
  } else {
    nrows = block_variants(s.cin_pg, n, rows);
  }
  const int ntaps = block_variants(s.kw, s.tap_pack, taps);

  const std::int64_t nchunks = sim::ceil_div_i64(s.pixels, s.pixel_chunk);
  const std::int64_t passes = static_cast<std::int64_t>(s.cin_blocks) * s.kh *
                              s.tap_groups_per_row();

  sim::MappingResult r;
  // Preload + chain fill: the ceil() and `rows` terms depend on the
  // (cols, rows, taps) triple, so enumerate the <= 8 variant combinations.
  for (int i = 0; i < ncols; ++i)
    for (int j = 0; j < nrows; ++j)
      for (int k = 0; k < ntaps; ++k) {
        const std::int64_t c = cols[i].value;
        const std::int64_t bt = rows[j].value * taps[k].value;
        const std::int64_t mult =
            cols[i].count * rows[j].count * taps[k].count * s.kh * nchunks;
        r.compute_cycles +=
            mult * (sim::ceil_div_i64(bt * c, config.preload_width) + bt);
      }
  // Pixel streaming: every pass of every output block streams all pixels.
  r.compute_cycles += static_cast<std::int64_t>(s.cout_blocks) * passes *
                      s.pixels * s.stream_penalty;
  r.compute_cycles *= s.groups;

  // Access counts: the loop axes separate, so each sum collapses to a
  // product of full-axis totals (sum of min(n, rem) blocks == the extent).
  const std::int64_t wpg =
      static_cast<std::int64_t>(s.cin_pg) * s.kh * s.kw;  // weights per out-chan
  const std::int64_t mac = s.pixels * wpg * s.cout_pg;
  sim::AccessCounts& cnt = r.counts;
  cnt.mac_ops = mac;
  cnt.rf_reads = mac;   // weight reg read per MAC
  cnt.inter_pe = mac;   // psum chain hop per MAC
  cnt.rf_writes = nchunks * wpg * s.cout_pg;  // stationary regs per chunk
  cnt.gb_reads = cnt.rf_writes                // weights into the preload buf
                 + static_cast<std::int64_t>(s.cout_blocks) * s.pixels *
                       s.cin_pg * s.kh * s.tap_groups_per_row();  // streamed inputs
  const std::int64_t psum_writes = passes * s.pixels * s.cout_pg;
  const std::int64_t psum_reads = (passes - 1) * s.pixels * s.cout_pg;
  if (config.ws_psums_in_gb) {
    cnt.gb_writes += psum_writes;
    cnt.gb_reads += psum_reads;
  } else {
    cnt.acc_writes = psum_writes;
    cnt.acc_reads = psum_reads;
  }
  cnt.gb_writes += s.pixels * s.cout_pg;  // chunk commits to the GB
  scale_counts(cnt, s.groups);
  return r;
}

sim::MappingResult estimate_os_mapping(const nn::Layer& layer,
                                       const sim::AcceleratorConfig& config,
                                       double sparsity) {
  const sim::OsSchedule s = sim::OsSchedule::plan(layer, config);
  const sim::SparsityInfo sp = sim::SparsityInfo::expected(layer, sparsity);

  Variants th, tw, ch;
  const int nth = block_variants(s.oh, config.array_n, th);
  const int ntw = block_variants(s.ow, config.array_n, tw);
  const int nch = block_variants(s.cout_pg, config.rf_entries, ch);

  sim::MappingResult r;
  for (int i = 0; i < nth; ++i)
    for (int j = 0; j < ntw; ++j) {
      const int nh = static_cast<int>(th[i].value);
      const int nw = static_cast<int>(tw[j].value);
      const std::int64_t tiles = th[i].count * tw[j].count;
      const std::int64_t block_pixels = s.block_pixels(nh, nw);
      const std::int64_t load = s.load_cycles(nh, nw, config);
      const std::int64_t tile_pes = static_cast<std::int64_t>(nh) * nw;
      for (int k = 0; k < nch; ++k) {
        const std::int64_t chunk = ch[k].value;
        const std::int64_t mult = tiles * ch[k].count;
        // Expected-sparsity broadcasts are uniform over (oc0, ic).
        const std::int64_t broadcasts =
            sp.nnz_chunk(0, static_cast<int>(chunk), 0);
        const std::int64_t per_ic = s.loads_overlap_compute
                                        ? std::max(load, broadcasts)
                                        : load + broadcasts;
        r.compute_cycles +=
            mult * (sim::kOsTileOverheadCycles + s.cin_pg * per_ic +
                    sim::ceil_div_i64(tile_pes * chunk, config.drain_width));
        const std::int64_t macs = broadcasts * tile_pes;
        r.counts.mac_ops += mult * s.cin_pg * macs;
        r.counts.gb_reads += mult * s.cin_pg * (block_pixels + broadcasts);
        r.counts.rf_writes += mult * s.cin_pg * (block_pixels + macs);
        r.counts.rf_reads += mult * s.cin_pg * 2 * macs;
        r.counts.inter_pe += mult * s.cin_pg * macs;
        r.counts.gb_writes += mult * tile_pes * chunk;
      }
    }
  r.compute_cycles *= s.groups;
  scale_counts(r.counts, s.groups);
  return r;
}

sim::LayerResult estimate_layer(const nn::Model& model, int layer_idx,
                                const sim::AcceleratorConfig& config,
                                sim::Dataflow dataflow,
                                sim::TensorPlacement placement) {
  const nn::Layer& l = model.layer(layer_idx);
  if (l.kind == nn::LayerKind::Input)
    throw std::invalid_argument("estimate_layer: cannot estimate the input layer");

  const int batch = config.batch;
  sim::LayerResult r;
  if (l.is_macs_layer()) {
    r.layer_idx = layer_idx;
    r.layer_name = l.name;
    r.useful_macs = l.macs() * batch;
    r.on_pe_array = true;
    r.dataflow = sim::effective_dataflow(l, config, dataflow);
    if (r.dataflow == sim::Dataflow::WeightStationary) {
      // Batch is folded into the WS pixel count by WsSchedule::plan.
      const sim::MappingResult m = estimate_ws_mapping(l, config);
      r.compute_cycles = m.compute_cycles;
      r.counts = m.counts;
    } else {
      // OS repeats identically per image (same scaling as simulate_layer).
      const double rate = config.os_zero_skip ? config.weight_sparsity : 0.0;
      const sim::MappingResult m = estimate_os_mapping(l, config, rate);
      r.compute_cycles = m.compute_cycles * batch;
      r.counts = m.counts;
      scale_counts(r.counts, batch);
    }
  } else {
    r = sim::simd_layer_pre_dram(model, layer_idx, config);
  }
  return sim::finish_layer_result(model, layer_idx, config, std::move(r),
                                  placement);
}

namespace {

/// Sum of per-band transfer cycles when `total` words split into `bands`
/// near-equal shares (the tiler's split: total/bands, +1 word for the first
/// total%bands bands).
std::int64_t split_transfer(const sim::DramModel& dram, std::int64_t total,
                            int bands) {
  if (total <= 0) return 0;
  if (bands <= 1) return dram.transfer_cycles(total);
  const std::int64_t base = total / bands;
  const std::int64_t rem = total % bands;
  return rem * dram.transfer_cycles(base + 1) +
         (static_cast<std::int64_t>(bands) - rem) * dram.transfer_cycles(base);
}

struct BandEstimate {
  std::int64_t makespan = 0;
  std::int64_t dma_busy = 0;
  std::int64_t halo = 0;
};

/// Closed-form makespan for the row-band timeline at `bands` bands.
///
/// Single-buffer mode: the event schedule collapses to the recurrence
///   load_end[i+1] = load_end[i] + max(store[i-1], compute[i]) + load[i+1]
/// (band i+1's load waits for band i's compute AND band i-1's store on the
/// shared DMA engine), whose sum is closed-form because every per-band
/// sequence takes at most two values (base share / base+1). Exact whenever
/// each band loads at least one word.
///
/// Double-buffer mode: max(compute-bound, DMA-bound) pipeline bound
/// (see docs/ESTIMATOR.md for the validated error).
BandEstimate estimate_bands(const sim::LayerDmaFacts& d,
                            const sim::DramModel& dram,
                            const sim::AcceleratorConfig& config,
                            std::int64_t compute, int bands,
                            bool double_buffered) {
  BandEstimate e;
  e.halo = d.halo_words(bands);
  const std::int64_t in = d.dma_in_total + e.halo;
  const std::int64_t out = d.dma_out_total;
  // One DRAM access latency per band that actually loads something.
  const std::int64_t lat = static_cast<std::int64_t>(config.dram_latency_cycles) *
                           std::min<std::int64_t>(bands, in);
  e.dma_busy = lat + split_transfer(dram, in, bands) +
               split_transfer(dram, out, bands);
  if (!double_buffered) {
    // Per-band values: first total%bands bands carry one extra word/cycle.
    const std::int64_t rem_c = compute % bands;
    const std::int64_t rem_o = out % bands;
    const std::int64_t c_lo = compute / bands;
    const std::int64_t c_hi = c_lo + (rem_c > 0 ? 1 : 0);
    const std::int64_t st_lo = dram.transfer_cycles(out / bands);
    const std::int64_t st_hi =
        dram.transfer_cycles(out / bands + (rem_o > 0 ? 1 : 0));
    // Sum_{i=1..bands-1} max(store[i-1], compute[i]): both sequences step
    // down once, so the index range splits into at most three constant
    // segments at rem_c and rem_o + 1.
    std::array<std::int64_t, 4> cuts = {
        1, std::clamp<std::int64_t>(rem_c, 1, bands),
        std::clamp<std::int64_t>(rem_o + 1, 1, bands), bands};
    std::sort(cuts.begin(), cuts.end());
    std::int64_t overlap_sum = 0;
    for (std::size_t s = 0; s + 1 < cuts.size(); ++s) {
      const std::int64_t a = cuts[s];
      const std::int64_t b = cuts[s + 1];
      if (b <= a) continue;
      const std::int64_t c_i = a < rem_c ? c_hi : c_lo;
      const std::int64_t st_prev = a <= rem_o ? st_hi : st_lo;
      overlap_sum += (b - a) * std::max(c_i, st_prev);
    }
    const std::int64_t c_first = bands > 1 ? c_hi : compute;
    const std::int64_t st_last = bands > 1 ? st_lo : dram.transfer_cycles(out);
    e.makespan = lat + split_transfer(dram, in, bands) + c_first + overlap_sum +
                 st_last;
    return e;
  }
  // Compute-bound: the first load fills the pipe, computes run back to back,
  // the last store drains. DMA-bound: the engine never idles after cycle 0;
  // the last band's compute trails it only where it outlasts the penultimate
  // store it overlaps with.
  const std::int64_t l0 =
      in > 0 ? config.dram_latency_cycles +
                   dram.transfer_cycles(in / bands + (in % bands ? 1 : 0))
             : 0;
  const std::int64_t st_last = dram.transfer_cycles(out / bands);
  const std::int64_t c_last = compute / bands;
  const std::int64_t st_penult =
      bands > 1 ? dram.transfer_cycles(out / bands +
                                       (bands - 2 < out % bands ? 1 : 0))
                : 0;
  e.makespan = std::max(l0 + compute + st_last,
                        e.dma_busy + std::max<std::int64_t>(0, c_last - st_penult));
  return e;
}

}  // namespace

sim::LayerResult estimate_retimed_layer(const nn::Model& model,
                                        const sim::LayerResult& analytic,
                                        const sim::AcceleratorConfig& config,
                                        sim::TensorPlacement placement,
                                        bool double_buffered,
                                        bool search_tiles) {
  const sim::LayerDmaFacts d =
      sim::analyze_layer_dma(model, analytic.layer_idx, config, placement);
  const sim::DramModel dram(config);

  int bands = d.clamp_bands(8);  // the tiler's fixed streaming heuristic
  if (search_tiles) {
    // Mirror search_layer_tiles: candidates scored double-buffered, first
    // minimum wins.
    std::int64_t best = 0;
    bool first = true;
    for (const int candidate : {1, 2, 4, 8, 16, 32, 64}) {
      const int b = d.clamp_bands(candidate);
      const BandEstimate e =
          estimate_bands(d, dram, config, analytic.compute_cycles, b, true);
      if (first || e.makespan < best) {
        best = e.makespan;
        bands = b;
        first = false;
      }
    }
  }
  const BandEstimate e = estimate_bands(d, dram, config, analytic.compute_cycles,
                                        bands, double_buffered);
  sim::LayerResult r = analytic;
  r.total_cycles = e.makespan;
  r.dram_cycles = e.dma_busy;
  // Same halo re-read traffic the real tiler discovers.
  r.counts.dram_words += e.halo;
  r.counts.gb_writes += e.halo;
  return r;
}

sim::NetworkResult estimate_network(const nn::Model& model,
                                    const sim::AcceleratorConfig& config,
                                    const sched::SimulationOptions& options) {
  if (!model.finalized())
    throw std::invalid_argument("estimate_network: model must be finalized");
  config.validate();

  const sched::ResidencyPlan plan = sched::plan_residency(model, config);

  std::map<int, int> fused_conv_to_pool;
  std::map<int, int> fused_pool_to_conv;
  if (options.fuse_pool_drain) {
    for (const sched::Fusion& f : sched::find_pool_fusions(model)) {
      fused_conv_to_pool[f.conv_idx] = f.pool_idx;
      fused_pool_to_conv[f.pool_idx] = f.conv_idx;
    }
  }

  sim::NetworkResult result;
  result.model_name = model.name();
  result.config = config;
  result.layers.reserve(
      static_cast<std::size_t>(std::max(0, model.layer_count() - 1)));
  for (int i = 1; i < model.layer_count(); ++i) {
    const nn::Layer& l = model.layer(i);
    sim::TensorPlacement placement = plan.placement_for(model, i);

    // Dataflow selection on the pre-fusion placement, as select_dataflows
    // does in the cycle-accurate path.
    sim::LayerResult layer;
    if (l.is_conv() && config.support == sim::DataflowSupport::Hybrid) {
      sim::LayerResult ws = estimate_layer(
          model, i, config, sim::Dataflow::WeightStationary, placement);
      sim::LayerResult os = estimate_layer(
          model, i, config, sim::Dataflow::OutputStationary, placement);
      const bool take_ws = objective_value(ws, options.objective, options.units) <=
                           objective_value(os, options.objective, options.units);
      layer = take_ws ? std::move(ws) : std::move(os);
    } else {
      const sim::Dataflow df =
          sim::effective_dataflow(l, config, sim::Dataflow::WeightStationary);
      layer = estimate_layer(model, i, config, df, placement);
    }

    if (const auto conv_it = fused_conv_to_pool.find(i);
        conv_it != fused_conv_to_pool.end()) {
      // The conv's stored output is the pooled tensor; its residency follows
      // the pool's keep decision.
      const int pool_idx = conv_it->second;
      placement.output_in_gb = plan.kept.at(static_cast<std::size_t>(pool_idx));
      placement.output_words_override = model.layer(pool_idx).out_shape.elems();
      layer = estimate_layer(model, i, config, layer.dataflow, placement);
      layer.layer_name += "+pool";
    } else if (fused_pool_to_conv.count(i) > 0) {
      // The pool runs in the conv's drain path: bookkeeping entry only.
      sim::LayerResult fused;
      fused.layer_idx = i;
      fused.layer_name = layer.layer_name + " (fused)";
      fused.on_pe_array = false;
      result.layers.push_back(std::move(fused));
      continue;
    }

    if (options.tile_timeline) {
      result.layers.push_back(estimate_retimed_layer(model, layer, config,
                                                     placement,
                                                     options.double_buffered,
                                                     options.tile_search));
    } else {
      result.layers.push_back(std::move(layer));
    }
  }
  return result;
}

}  // namespace sqz::est
